"""Shared experiment utilities: rows, rendering, size sweeps, and the
kinematics-backend shootout used by ``python -m repro bench`` and the
benchmark suite."""

from __future__ import annotations

import platform
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class ExperimentRow:
    """One measured configuration of one experiment.

    Attributes:
        label: Human-readable setting (e.g. "basic, even n").
        params: Input parameters (n, N, seed, ...).
        measured: Measured quantities (round counts, sizes, ...).
        reference: The paper's bound evaluated at the same parameters.
    """

    label: str
    params: Dict[str, object] = field(default_factory=dict)
    measured: Dict[str, object] = field(default_factory=dict)
    reference: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (the CLI ``--json`` row format).

        Exact rationals become ``"p/q"`` strings; everything else JSON
        already understands is passed through.
        """
        return {
            "label": self.label,
            "params": {k: _jsonable(v) for k, v in self.params.items()},
            "measured": {k: _jsonable(v) for k, v in self.measured.items()},
            "reference": {
                k: _jsonable(v) for k, v in self.reference.items()
            },
        }


def _numpy_version() -> Optional[str]:
    """numpy's version string via the optional-dependency gate."""
    from repro.ring.arrayops import get_numpy

    np = get_numpy()
    return None if np is None else str(np.__version__)


def _jsonable(value: object) -> object:
    from fractions import Fraction

    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def render_table(rows: Sequence[ExperimentRow], title: str = "") -> str:
    """Render rows as an aligned text table (the bench output format)."""
    if not rows:
        return f"{title}\n(empty)"
    param_keys = sorted({k for r in rows for k in r.params})
    measured_keys = sorted({k for r in rows for k in r.measured})
    reference_keys = sorted({k for r in rows for k in r.reference})
    headers = (
        ["setting"]
        + param_keys
        + [f"meas:{k}" for k in measured_keys]
        + [f"ref:{k}" for k in reference_keys]
    )
    body: List[List[str]] = []
    for r in rows:
        body.append(
            [r.label]
            + [_fmt(r.params.get(k)) for k in param_keys]
            + [_fmt(r.measured.get(k)) for k in measured_keys]
            + [_fmt(r.reference.get(k)) for k in reference_keys]
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def geometric_sizes(start: int, stop: int, factor: int = 2) -> List[int]:
    """Sizes start, start*factor, ... up to stop (inclusive if hit)."""
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= factor
    return sizes


def _shootout_directions(n: int, rounds: int, seed: int) -> List[list]:
    """Deterministic per-round direction vectors for the shootout.

    Roughly half the rounds repeat the previous vector (protocols run
    long homogeneous probe/restore stretches, which exercises the
    lattice backend's memoised pattern tables) and half draw fresh
    per-agent directions (exercising the derivation path).
    """
    from repro.types import LocalDirection

    rng = random.Random(seed)
    choices = (LocalDirection.RIGHT, LocalDirection.LEFT)
    sequence: List[list] = []
    prev: Optional[list] = None
    for _ in range(rounds):
        if prev is None or rng.random() >= 0.5:
            prev = [rng.choice(choices) for _ in range(n)]
        sequence.append(prev)
    return sequence


def _shootout_run(backend: str, n: int, seed: int, sequence, collect: bool):
    """Run the shootout round sequence on a fresh state; optionally
    collect outcomes and the final positions for the agreement check."""
    from repro.core.scheduler import Scheduler
    from repro.ring.configs import random_configuration
    from repro.types import Model

    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE, backend=backend)
    sim = sched.simulator
    outcomes = [] if collect else None
    start = time.perf_counter()
    for directions in sequence:
        outcome = sim.execute(directions)
        if collect:
            outcomes.append(outcome)
    elapsed = time.perf_counter() - start
    return elapsed, outcomes, list(state.positions)


def backend_shootout(
    n: int = 64, rounds: int = 256, seed: int = 11, repeats: int = 3
) -> Dict[str, object]:
    """Time the lattice backend against the Fraction backend.

    Both backends execute the identical perceptive-model round sequence
    on identical initial configurations.  Before timing, one collecting
    run per backend verifies bit-exact agreement of every observation,
    rotation index, collision-event count and the final positions; a
    mismatch raises ``AssertionError``.  Timings are the best of
    ``repeats`` runs.

    Returns a JSON-ready report (the ``BENCH_simulator.json`` payload).
    """
    from repro.exceptions import SimulationError

    sequence = _shootout_directions(n, rounds, seed)

    _, frac_outcomes, frac_pos = _shootout_run(
        "fraction", n, seed, sequence, collect=True
    )
    _, latt_outcomes, latt_pos = _shootout_run(
        "lattice", n, seed, sequence, collect=True
    )
    # Explicit raises, not asserts: the emitted bit_exact field must
    # stay trustworthy under `python -O` too.
    if frac_pos != latt_pos:
        raise SimulationError("backends disagree on final positions")
    for k, (a, b) in enumerate(zip(frac_outcomes, latt_outcomes)):
        if (
            a.rotation_index != b.rotation_index
            or a.collision_events != b.collision_events
            or a.observations != b.observations
        ):
            raise SimulationError(f"backends disagree on round {k}")

    timings: Dict[str, float] = {}
    for backend in ("fraction", "lattice"):
        best = min(
            _shootout_run(backend, n, seed, sequence, collect=False)[0]
            for _ in range(max(1, repeats))
        )
        timings[backend] = best

    speedup = timings["fraction"] / timings["lattice"]
    return {
        "benchmark": "backend_shootout",
        "workload": {
            "n": n,
            "rounds": rounds,
            "model": "perceptive",
            "seed": seed,
            "repeats": repeats,
        },
        "bit_exact": True,
        "seconds": {k: round(v, 6) for k, v in timings.items()},
        "rounds_per_second": {
            k: round(rounds / v, 1) for k, v in timings.items()
        },
        "speedup_lattice_over_fraction": round(speedup, 2),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _policy_workload(n: int, seed: int, driver: str):
    """One phase-driver workload run: neighbor discovery plus a sparse
    relay flood -- the paper's hot communication drivers -- at size
    ``n`` on the lattice backend.  Returns a comparable fingerprint."""
    from repro.core.agent import id_bits
    from repro.core.scheduler import Scheduler
    from repro.ring.configs import random_configuration
    from repro.types import Model

    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE, backend="lattice")
    width = id_bits(sched.population.id_bound)
    start = time.perf_counter()
    if driver == "native":
        from repro.protocols.policies.bitcomm import relay_flood
        from repro.protocols.policies.neighbor_discovery import (
            discover_neighbors,
        )

        discover_neighbors(sched)
        relay_flood(
            sched,
            [
                agent_id if agent_id % 16 == 1 else None
                for agent_id in sched.population.ids
            ],
            distance=4,
            width=width,
        )
    else:
        from repro.protocols.bitcomm import relay_flood
        from repro.protocols.neighbor_discovery import discover_neighbors

        discover_neighbors(sched)
        relay_flood(
            sched,
            lambda view: (
                view.agent_id if view.agent_id % 16 == 1 else None
            ),
            distance=4,
            width=width,
        )
    elapsed = time.perf_counter() - start
    fingerprint = (
        sched.rounds,
        state.snapshot(),
        [list(v.log) for v in sched.views],
        [dict(v.memory) for v in sched.views],
    )
    return elapsed, fingerprint


def policy_shootout(
    sizes: Sequence[int] = (64, 256, 1024),
    seed: int = 11,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time the native whole-population phase drivers against the legacy
    per-agent callback drivers.

    Both drivers execute the identical workload (neighbor discovery +
    sparse relay flood, perceptive model, lattice backend) from
    identical initial configurations at each size.  One collecting run
    per driver first verifies bit-exact agreement of round counts,
    final positions, every observation and the final protocol memory; a
    mismatch raises ``SimulationError``.  Timings are the best of
    ``repeats`` runs.

    Returns a JSON-ready report (the ``BENCH_policies.json`` payload).
    """
    import os

    from repro.exceptions import SimulationError

    rows = []
    for n in sizes:
        _, native_fp = _policy_workload(n, seed, "native")
        _, callback_fp = _policy_workload(n, seed, "callback")
        if native_fp != callback_fp:
            raise SimulationError(
                f"native and callback drivers disagree at n={n}"
            )
        timings: Dict[str, float] = {}
        for driver in ("native", "callback"):
            timings[driver] = min(
                _policy_workload(n, seed, driver)[0]
                for _ in range(max(1, repeats))
            )
        rows.append({
            "n": n,
            "rounds": native_fp[0],
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "speedup_native_over_callback": round(
                timings["callback"] / timings["native"], 2
            ),
        })
    return {
        "benchmark": "policy_shootout",
        "workload": {
            "phases": ["neighbor_discovery", "relay_flood(d=4)"],
            "model": "perceptive",
            "backend": "lattice",
            "seed": seed,
            "repeats": repeats,
        },
        "bit_exact": True,
        "sweep": rows,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _array_workload(backend: str, n: int, seed: int, collect: bool):
    """One large-ring workload run: deterministic rotation probes, then
    neighbor discovery, then a sparse relay flood -- the probe/restore
    pairs and bit-exchange frames that the array backend fuses into
    whole-column stretches.  Returns ``(seconds, fingerprint)``; the
    fingerprint (rounds, final positions, all protocol memory, sampled
    agent logs) is only assembled on collecting runs."""
    from repro.core.agent import id_bits
    from repro.core.scheduler import Scheduler
    from repro.protocols.policies.bitcomm import relay_flood
    from repro.protocols.policies.neighbor_discovery import (
        discover_neighbors,
    )
    from repro.protocols.policies.rotation_probe import ri_is_zero
    from repro.ring.configs import random_configuration
    from repro.types import Model

    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE, backend=backend)
    ids = sched.population.ids
    width = id_bits(sched.population.id_bound)
    start = time.perf_counter()
    for bit in range(6):
        ri_is_zero(
            sched, {agent_id for agent_id in ids if (agent_id >> bit) & 1}
        )
    discover_neighbors(sched)
    relay_flood(
        sched,
        [
            agent_id if agent_id % 16 == 1 else None
            for agent_id in ids
        ],
        distance=2,
        width=width,
    )
    elapsed = time.perf_counter() - start
    fingerprint = None
    if collect:
        sample = min(n, 64)
        fingerprint = (
            sched.rounds,
            state.snapshot(),
            [dict(view.memory) for view in sched.views],
            [list(view.log) for view in sched.views[:sample]],
        )
    return elapsed, fingerprint


def array_shootout(
    sizes: Sequence[int] = (1024, 4096, 16384),
    seed: int = 11,
    repeats: int = 2,
    fraction_check_at: Optional[int] = None,
) -> Dict[str, object]:
    """Time the array backend against the lattice backend on large rings.

    Both backends execute the identical rotation-probe + relay-flood
    workload (perceptive model, native drivers) from identical initial
    configurations at each size.  Before any timing, collecting runs
    verify bit-exact agreement of round counts, final positions, every
    agent's protocol memory and the sampled observation logs -- at
    every size between array and lattice, and additionally against the
    exact :class:`~repro.ring.backends.FractionBackend` at
    ``fraction_check_at``, defaulting to the smallest swept size (the
    Fraction run is the executable spec; checking it at the smallest
    size keeps the sweep affordable, and the lattice backend is itself
    property-tested bit-exact against it at every size in tier-1).
    The report's ``fraction_checked_at`` records the size actually
    checked -- ``None`` when ``fraction_check_at`` was pinned to a
    size outside the sweep, so the report never claims a verification
    that did not run.  Timings are the best of ``repeats`` runs for
    n <= 4096 and a single run above (the big rings dominate wall
    clock and their ratios are stable).

    Returns a JSON-ready report (the ``BENCH_array.json`` payload).
    """
    import os

    from repro.exceptions import SimulationError

    sizes = tuple(sizes)
    if fraction_check_at is None and sizes:
        fraction_check_at = min(sizes)
    fraction_checked = (
        fraction_check_at if fraction_check_at in sizes else None
    )
    rows = []
    for n in sizes:
        _, latt_fp = _array_workload("lattice", n, seed, collect=True)
        _, arr_fp = _array_workload("array", n, seed, collect=True)
        if latt_fp != arr_fp:
            raise SimulationError(
                f"array and lattice backends disagree at n={n}"
            )
        if n == fraction_check_at:
            _, frac_fp = _array_workload("fraction", n, seed, collect=True)
            if frac_fp != arr_fp:
                raise SimulationError(
                    f"array and Fraction backends disagree at n={n}"
                )
        runs = max(1, repeats) if n <= 4096 else 1
        timings: Dict[str, float] = {}
        for backend in ("lattice", "array"):
            timings[backend] = min(
                _array_workload(backend, n, seed, collect=False)[0]
                for _ in range(runs)
            )
        rows.append({
            "n": n,
            "rounds": latt_fp[0],
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "speedup_array_over_lattice": round(
                timings["lattice"] / timings["array"], 2
            ),
        })

    numpy_version = _numpy_version()
    return {
        "benchmark": "array_shootout",
        "workload": {
            "phases": [
                "rotation_probes(6)",
                "neighbor_discovery",
                "relay_flood(d=2)",
            ],
            "model": "perceptive",
            "driver": "native",
            "seed": seed,
            "repeats": repeats,
            "fraction_checked_at": fraction_checked,
        },
        "bit_exact": True,
        "sweep": rows,
        "numpy": numpy_version,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _speculative_preset(sched, leader: bool = True, labels: bool = False):
    """Stage the sweep/distances preconditions directly in the columns.

    A harness shortcut (it reads chiralities from the world state,
    which protocol code must never do): the common frame is pinned to
    the objective clockwise direction, the max-ID agent leads, and for
    Distances the 1..n labels follow the ring order -- exactly the
    state the coordination phases would have established, minus their
    rounds.  Works identically for the native (column) and callback
    (per-agent memory) drivers because views are slots of the same
    store.
    """
    from repro.protocols.base import (
        KEY_FRAME_FLIP,
        KEY_LABEL,
        KEY_LEADER,
        KEY_RING_SIZE,
    )
    from repro.types import Chirality

    population = sched.population
    chir = sched.state.chiralities
    population.set_column(
        KEY_FRAME_FLIP, [c is not Chirality.CLOCKWISE for c in chir]
    )
    if leader:
        lead = max(range(population.n), key=lambda i: population.ids[i])
        population.set_column(
            KEY_LEADER, [i == lead for i in range(population.n)]
        )
    if labels:
        population.set_column(
            KEY_LABEL, list(range(1, population.n + 1))
        )
        population.fill(KEY_RING_SIZE, population.n)


def _speculative_workload(
    backend: str, n: int, distances_n: int, seed: int, driver: str,
    collect: bool,
):
    """One data-dependent-phase workload run: the rotation-1 sweep at
    ``n`` (lazy model), the rotation-2 sweep at the nearest odd
    ``n // 2 + 1`` (basic model) and Algorithm 6 at ``distances_n``
    (perceptive model, equation-solve bound -- held small so the
    simulation layer under test stays visible in the ratio).  Returns
    ``(seconds, fingerprint)``; the fingerprint (rounds, final
    positions, every agent's ``ld.gaps``, sampled logs) is only
    assembled on collecting runs.
    """
    from repro.core.scheduler import Scheduler
    from repro.protocols.base import KEY_LD_GAPS
    from repro.ring.configs import random_configuration
    from repro.types import Model

    if driver == "native":
        from repro.protocols.policies.distances import discover_distances
        from repro.protocols.policies.location_discovery import (
            sweep_rotation_one,
            sweep_rotation_two,
        )
    else:
        from repro.protocols.distances import discover_distances
        from repro.protocols.location_discovery import (
            sweep_rotation_one,
            sweep_rotation_two,
        )

    n_odd = n // 2 + 1
    if n_odd % 2 == 0:
        n_odd += 1
    phases = (
        (sweep_rotation_one, n, Model.LAZY, False),
        (sweep_rotation_two, n_odd, Model.BASIC, False),
        (discover_distances, distances_n, Model.PERCEPTIVE, True),
    )
    elapsed = 0.0
    fingerprint = [] if collect else None
    for run_phase, size, model, labels in phases:
        state = random_configuration(size, seed=seed, common_sense=False)
        sched = Scheduler(state, model, backend=backend)
        _speculative_preset(sched, leader=not labels, labels=labels)
        start = time.perf_counter()
        run_phase(sched)
        elapsed += time.perf_counter() - start
        if collect:
            sample = min(size, 64)
            fingerprint.append((
                sched.rounds,
                state.snapshot(),
                sched.population.get_column(KEY_LD_GAPS),
                [list(view.log) for view in sched.views[:sample]],
            ))
    return elapsed, fingerprint


def speculative_shootout(
    sizes: Sequence[int] = (256, 1024),
    distances_n: int = 48,
    seed: int = 11,
    repeats: int = 2,
) -> Dict[str, object]:
    """Time the array backend against the lattice backend on the
    *data-dependent* phases (speculative fused stretches).

    Both backends execute the identical sweep + Distances workload with
    the native drivers from identical initial configurations at each
    size.  Before any timing, collecting runs verify bit-exact
    agreement of round counts, final positions, every agent's gap
    vector and the sampled observation logs -- between array and
    lattice at every size, and additionally against the legacy
    per-agent callback drivers and the exact Fraction backend at the
    smallest swept size (``callback_checked_at`` /
    ``fraction_checked_at`` record what actually ran; the native
    drivers and all three backends are property-tested bit-exact at
    every size in tier-1).  Timings are the best of ``repeats`` runs
    for the smaller sizes and a single run at the largest.

    Returns a JSON-ready report (the ``BENCH_speculative.json``
    payload).
    """
    import os

    from repro.exceptions import SimulationError

    sizes = tuple(sizes)
    check_at = min(sizes) if sizes else None
    rows = []
    for n in sizes:
        _, latt_fp = _speculative_workload(
            "lattice", n, distances_n, seed, "native", collect=True
        )
        _, arr_fp = _speculative_workload(
            "array", n, distances_n, seed, "native", collect=True
        )
        if latt_fp != arr_fp:
            raise SimulationError(
                f"array and lattice backends disagree at n={n}"
            )
        if n == check_at:
            _, cb_fp = _speculative_workload(
                "lattice", n, distances_n, seed, "callback", collect=True
            )
            if cb_fp != latt_fp:
                raise SimulationError(
                    f"native and callback drivers disagree at n={n}"
                )
            _, frac_fp = _speculative_workload(
                "fraction", n, distances_n, seed, "native", collect=True
            )
            if frac_fp != arr_fp:
                raise SimulationError(
                    f"array and Fraction backends disagree at n={n}"
                )
        runs = max(1, repeats) if n < max(sizes) else 1
        timings: Dict[str, float] = {}
        for backend in ("lattice", "array"):
            timings[backend] = min(
                _speculative_workload(
                    backend, n, distances_n, seed, "native", collect=False
                )[0]
                for _ in range(runs)
            )
        rows.append({
            "n": n,
            "rounds": sum(phase[0] for phase in latt_fp),
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "speedup_array_over_lattice": round(
                timings["lattice"] / timings["array"], 2
            ),
        })

    numpy_version = _numpy_version()
    return {
        "benchmark": "speculative_shootout",
        "workload": {
            "phases": [
                "sweep_rotation_one(lazy)",
                "sweep_rotation_two(basic, odd n//2+1)",
                f"discover_distances(perceptive, n={distances_n})",
            ],
            "driver": "native",
            "seed": seed,
            "repeats": repeats,
            "distances_n": distances_n,
            "callback_checked_at": check_at,
            "fraction_checked_at": check_at,
        },
        "bit_exact": True,
        "sweep": rows,
        "numpy": numpy_version,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _equations_distances_run(
    n: int, seed: int, engine: str, collect: bool
):
    """One native array-backend Algorithm 6 run under ``engine``.

    Returns ``(seconds, fingerprint)``; the fingerprint (rounds, final
    positions, every agent's gap vector materialised to plain Fraction
    lists) is only assembled on collecting runs, so timed runs measure
    the phase alone.
    """
    from repro.core.scheduler import Scheduler
    from repro.protocols.base import KEY_LD_GAPS
    from repro.protocols.policies.distances import discover_distances
    from repro.ring.configs import random_configuration
    from repro.types import Model

    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE, backend="array")
    _speculative_preset(sched, leader=False, labels=True)
    start = time.perf_counter()
    discover_distances(sched, engine=engine)
    elapsed = time.perf_counter() - start
    fingerprint = None
    if collect:
        fingerprint = (
            sched.rounds,
            state.snapshot(),
            [
                list(column)
                for column in sched.population.get_column(KEY_LD_GAPS)
            ],
        )
    return elapsed, fingerprint


def _equations_sweeps_run(n: int, seed: int, engine: str, collect: bool):
    """The two LD sweeps (rotation 1 at ``n``, rotation 2 at the
    nearest odd ``n // 2 + 1``) under ``engine`` on the array backend;
    same contract as :func:`_equations_distances_run`."""
    from repro.core.scheduler import Scheduler
    from repro.protocols.base import KEY_LD_GAPS
    from repro.protocols.policies.location_discovery import (
        sweep_rotation_one,
        sweep_rotation_two,
    )
    from repro.ring.configs import random_configuration
    from repro.types import Model

    n_odd = n // 2 + 1
    if n_odd % 2 == 0:
        n_odd += 1
    elapsed = 0.0
    fingerprint = [] if collect else None
    rounds = 0
    for run_phase, size, model in (
        (sweep_rotation_one, n, Model.LAZY),
        (sweep_rotation_two, n_odd, Model.BASIC),
    ):
        state = random_configuration(size, seed=seed, common_sense=False)
        sched = Scheduler(state, model, backend="array")
        _speculative_preset(sched, leader=True, labels=False)
        start = time.perf_counter()
        run_phase(sched, engine=engine)
        elapsed += time.perf_counter() - start
        rounds += sched.rounds
        if collect:
            fingerprint.append((
                sched.rounds,
                state.snapshot(),
                [
                    list(column)
                    for column in sched.population.get_column(KEY_LD_GAPS)
                ],
            ))
    return elapsed, fingerprint, rounds


def equations_shootout(
    distances_sizes: Sequence[int] = (24, 48, 96),
    sweep_sizes: Sequence[int] = (256, 1024),
    seed: int = 11,
    repeats: int = 2,
) -> Dict[str, object]:
    """Time the fraction-free equation engine against the Fraction spec
    on the data-dependent analysis hot paths (native array backend).

    Two workloads: Algorithm 6 (``discover_distances``) across
    ``distances_sizes`` -- integer-column harvests into
    ``IntEquationSystem`` vs the exact-`Fraction` ``EquationSystem``
    spec -- and the two LD sweeps across ``sweep_sizes`` -- the lazy
    columnar ``_GapHarvest`` vs the eager Fraction-list harvest.  At
    *every* size, before any timing, collecting runs under both engines
    must agree bit-exactly on round counts, final positions and every
    agent's gap vector (exact ``Fraction`` equality; a mismatch raises
    ``SimulationError``).  Timings are the best of ``repeats`` runs for
    the smaller sizes and a single run at the largest of each sweep.

    Returns a JSON-ready report (the ``BENCH_equations.json`` payload).
    """
    import os

    from repro.exceptions import SimulationError

    distances_sizes = tuple(distances_sizes)
    sweep_sizes = tuple(sweep_sizes)

    distances_rows = []
    for n in distances_sizes:
        _, int_fp = _equations_distances_run(n, seed, "int", collect=True)
        _, frac_fp = _equations_distances_run(
            n, seed, "fraction", collect=True
        )
        if int_fp != frac_fp:
            raise SimulationError(
                f"int and Fraction equation engines disagree on "
                f"distances at n={n}"
            )
        runs = max(1, repeats) if n < max(distances_sizes) else 1
        timings: Dict[str, float] = {}
        for engine in ("int", "fraction"):
            timings[engine] = min(
                _equations_distances_run(n, seed, engine, collect=False)[0]
                for _ in range(runs)
            )
        distances_rows.append({
            "n": n,
            "rounds": int_fp[0],
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "speedup_int_over_fraction": round(
                timings["fraction"] / timings["int"], 2
            ),
        })

    sweep_rows = []
    for n in sweep_sizes:
        _, int_fp, rounds = _equations_sweeps_run(
            n, seed, "int", collect=True
        )
        _, frac_fp, _ = _equations_sweeps_run(
            n, seed, "fraction", collect=True
        )
        if int_fp != frac_fp:
            raise SimulationError(
                f"columnar and Fraction harvests disagree on the LD "
                f"sweeps at n={n}"
            )
        runs = max(1, repeats) if n < max(sweep_sizes) else 1
        timings = {}
        for engine in ("int", "fraction"):
            timings[engine] = min(
                _equations_sweeps_run(n, seed, engine, collect=False)[0]
                for _ in range(runs)
            )
        sweep_rows.append({
            "n": n,
            "rounds": rounds,
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "speedup_int_over_fraction": round(
                timings["fraction"] / timings["int"], 2
            ),
        })

    numpy_version = _numpy_version()
    return {
        "benchmark": "equations_shootout",
        "workload": {
            "backend": "array",
            "driver": "native",
            "phases": [
                "discover_distances(perceptive, int vs fraction engine)",
                "sweep_rotation_one(lazy) + sweep_rotation_two"
                "(basic, odd n//2+1), columnar vs fraction harvest",
            ],
            "seed": seed,
            "repeats": repeats,
            "distances_sizes": list(distances_sizes),
            "sweep_sizes": list(sweep_sizes),
            "bit_exact_checked_at": {
                "distances": list(distances_sizes),
                "sweeps": list(sweep_sizes),
            },
        },
        "bit_exact": True,
        "distances": distances_rows,
        "sweeps": sweep_rows,
        "numpy": numpy_version,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _worker_counts(workers: int) -> List[int]:
    """The scaling-curve worker counts: 1, 2, 4, ... capped at workers."""
    counts = []
    w = 1
    while w < workers:
        counts.append(w)
        w *= 2
    counts.append(workers)
    return counts


def fleet_shootout(
    sessions: int = 16,
    n: int = 24,
    workers: int = 4,
    seed: int = 0,
    model: str = "perceptive",
    repeats: int = 3,
) -> Dict[str, object]:
    """Time a fleet sweep serially vs. across warm process pools.

    The same ``sessions``-ring sweep (one seed per ring, identical
    specs) runs on the serial executor and on the persistent warm
    pools of :mod:`repro.parallel` at every worker count of the
    doubling curve ``1, 2, 4, ... workers``.  Each pool is warmed
    (workers spawned, session stack imported) *before* its timed
    repeats, so pool spin-up never lands in a timed region; spec and
    result payloads travel through shared-memory slots, not pickles.
    Every run must produce bit-identical result payloads (a mismatch
    raises ``SimulationError``).  Timings are the best of ``repeats``
    runs per executor.

    The reported ``parallel_speedup`` is serial wall-clock over the
    best pool wall-clock across the scaling curve -- the pool's best
    configuration; ``scaling`` holds the whole per-worker-count curve.
    On multicore the best point is the full-``workers`` pool and the
    headline approaches ``min(workers, cpus)``; on a single-CPU host
    every pool size hovers around 1.0x (cooperative overhead only --
    the warm pool removes the historic spin-up penalty) and the curve
    degrades slightly with worker count, so the best point is the
    honest headline.  ``cpu_count`` is recorded so the numbers read in
    context.

    Returns a JSON-ready report (the ``BENCH_fleet.json`` payload).
    """
    import os

    from repro.api.fleet import Fleet, sweep
    from repro.exceptions import SimulationError

    specs = sweep(
        protocol="location-discovery",
        sizes=(n,),
        seeds=range(seed, seed + sessions),
        models=(model,),
        backends=("lattice",),
    )
    repeats = max(1, repeats)
    reference = None

    def timed_runs(fleet: Fleet, label: str) -> float:
        nonlocal reference
        best = None
        for _ in range(repeats):
            report = fleet.run()
            if reference is None:
                reference = report.payloads()
            elif report.payloads() != reference:
                raise SimulationError(
                    "fleet results differ across executors/runs "
                    f"({label})"
                )
            if best is None or report.seconds_total < best:
                best = report.seconds_total
        return best

    serial_best = timed_runs(Fleet(specs, executor="serial"), "serial")
    scaling: List[Dict[str, object]] = []
    pool_best = None
    for count in _worker_counts(workers):
        fleet = Fleet(specs, workers=count, executor="process")
        fleet.warm()  # spin-up excluded from the timed repeats
        best = timed_runs(fleet, f"process_pool[{count}]")
        scaling.append({
            "workers": count,
            "seconds": round(best, 6),
            "speedup": round(serial_best / best, 2),
            # Each row carries the host CPU count so a single row
            # pasted out of context still reads honestly (a 4-worker
            # 1.0x on a 1-CPU host is expected, not a regression).
            "cpu_count": os.cpu_count() or 1,
        })
        if pool_best is None or best < pool_best:
            pool_best = best
    speedup = serial_best / pool_best
    return {
        "benchmark": "fleet_shootout",
        "workload": {
            "sessions": sessions,
            "n": n,
            "model": model,
            "protocol": "location-discovery",
            "seed": seed,
            "workers": workers,
            "repeats": repeats,
        },
        "deterministic_across_executors": True,
        "warm_pool": True,
        "seconds": {
            "serial": round(serial_best, 6),
            "process_pool": round(pool_best, 6),
        },
        "scaling": scaling,
        "parallel_speedup": round(speedup, 2),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def cache_shootout(
    sessions: int = 8,
    n: int = 16,
    dupes: int = 4,
    seed: int = 0,
    model: str = "perceptive",
    repeats: int = 3,
) -> Dict[str, object]:
    """Time run-store warm fetches and sweep dedup against recompute.

    Two measurements over location-discovery sweeps on the lattice
    backend (every store interaction through the public Fleet path):

    * **warm**: a ``sessions``-spec sweep whose results are already
      stored runs with the cache on (every spec a hit) against the
      same sweep recomputed serially.  This is the steady-state payoff
      of the store: a rerun of yesterday's sweep.
    * **dedup**: a sweep of ``dupes`` distinct specs, each repeated
      ``dupes`` times, runs against a *fresh empty store each repeat*
      -- so the win is purely intra-sweep deduplication (each distinct
      key computed once, duplicates fanned out), not warm hits.

    Bit-exactness is enforced **before** any timing: fetched payloads
    must equal the serially recomputed reference, a backend/driver
    variant sweep (fraction backend, callback driver) must be served
    by the same entries -- that is the key's backend-independence --
    and a sampled variant is recomputed uncached and compared against
    the fetched payload.  Any mismatch raises ``SimulationError``.
    Timings are best-of-``repeats``.

    Returns a JSON-ready report (the ``BENCH_cache.json`` payload).
    """
    import os
    import shutil
    import tempfile

    from repro.api.fleet import Fleet, run_session_spec, sweep
    from repro.exceptions import SimulationError
    from repro.store.service import reset_stores

    repeats = max(1, repeats)
    specs = sweep(
        protocol="location-discovery",
        sizes=(n,),
        seeds=range(seed, seed + sessions),
        models=(model,),
        backends=("lattice",),
    )
    variant_specs = sweep(
        protocol="location-discovery",
        sizes=(n,),
        seeds=range(seed, seed + sessions),
        models=(model,),
        backends=("fraction",),
        driver="callback",
    )
    scratch: List[str] = []

    def fresh_dir() -> str:
        path = tempfile.mkdtemp(prefix="repro-bench-cache-")
        scratch.append(path)
        return path

    try:
        # -- bit-exactness first, timing only afterwards -------------
        reference = [run_session_spec(spec)["result"] for spec in specs]
        warm_dir = fresh_dir()
        populate = Fleet(
            specs, executor="serial", cache=True, cache_dir=warm_dir,
        ).run()
        if [row["result"] for row in populate.results] != reference:
            raise SimulationError("cached compute differs from recompute")
        fetched = Fleet(
            specs, executor="serial", cache=True, cache_dir=warm_dir,
        ).run()
        if fetched.cache["hits"] != len(specs):  # type: ignore[index]
            raise SimulationError("warm sweep was not served by fetches")
        if [row["result"] for row in fetched.results] != reference:
            raise SimulationError("fetched results differ from recompute")
        variant = Fleet(
            variant_specs, executor="serial", cache=True,
            cache_dir=warm_dir,
        ).run()
        if variant.cache["hits"] != len(variant_specs):  # type: ignore[index]
            raise SimulationError(
                "backend/driver variant missed entries keyed "
                "backend-independently"
            )
        if [row["result"] for row in variant.results] != reference:
            raise SimulationError("variant fetch differs from recompute")
        sampled = run_session_spec(variant_specs[0])["result"]
        if sampled != reference[0]:
            raise SimulationError(
                "sampled variant recompute differs from reference"
            )

        # -- warm: all-hit sweep vs serial recompute -----------------
        def best_of(make_fleet) -> float:
            best = None
            for _ in range(repeats):
                report = make_fleet().run()
                if best is None or report.seconds_total < best:
                    best = report.seconds_total
            return best

        recompute_best = best_of(
            lambda: Fleet(specs, executor="serial", cache=False)
        )
        warm_best = best_of(
            lambda: Fleet(
                specs, executor="serial", cache=True, cache_dir=warm_dir,
            )
        )

        # -- dedup: duplicated sweep against a fresh store each time -
        dup_specs = [
            spec for spec in specs[:dupes] for _ in range(dupes)
        ]
        dup_uncached_best = best_of(
            lambda: Fleet(dup_specs, executor="serial", cache=False)
        )
        dup_best = None
        for _ in range(repeats):
            report = Fleet(
                dup_specs, executor="serial", cache=True,
                cache_dir=fresh_dir(),
            ).run()
            summary = report.cache or {}
            if summary.get("misses") != dupes or (
                summary.get("deduped") != len(dup_specs) - dupes
            ):
                raise SimulationError(
                    "dedup sweep did not compute each distinct key "
                    f"exactly once: {summary}"
                )
            if dup_best is None or report.seconds_total < dup_best:
                dup_best = report.seconds_total
    finally:
        reset_stores()
        for path in scratch:
            shutil.rmtree(path, ignore_errors=True)

    return {
        "benchmark": "cache_shootout",
        "workload": {
            "sessions": sessions,
            "n": n,
            "dupes": dupes,
            "model": model,
            "protocol": "location-discovery",
            "backend": "lattice",
            "variant_backend": "fraction",
            "variant_driver": "callback",
            "seed": seed,
            "repeats": repeats,
        },
        "bit_exact": True,
        "seconds": {
            "recompute": round(recompute_best, 6),
            "warm_fetch": round(warm_best, 6),
            "dup_sweep_uncached": round(dup_uncached_best, 6),
            "dup_sweep_deduped": round(dup_best, 6),
        },
        "warm_speedup": round(recompute_best / warm_best, 2),
        "dedup_speedup": round(dup_uncached_best / dup_best, 2),
        "entries": len(specs),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def _shard_rows(n: int, phase: int) -> Tuple[list, list]:
    """A mixed, idle-free velocity row pair for the shard workload.

    Three quarters of the agents move clockwise, one quarter counter-
    clockwise (net rotation n/2 per round), with the minority slots
    shifted by ``phase`` so each timed repeat plans distinct rows --
    distinct rows cannot hit the backend's whole-stretch memo, so
    every repeat times real column work.
    """
    row_a = [-1 if (i + phase) % 4 == 0 else 1 for i in range(n)]
    row_b = [-v for v in row_a]
    return row_a, row_b


def _shard_digest(result, backend) -> str:
    """SHA-256 over a span's full observable output (bit-exact check)."""
    import hashlib

    h = hashlib.sha256()
    h.update(repr(result.rotations).encode())
    h.update(repr(backend.offset).encode())
    dist = result.dist_ints_all()
    h.update(dist.tobytes())
    for j in range(result.k):
        coll = result.coll_ints(j)
        if coll is not None:
            h.update(coll.tobytes())
    return h.hexdigest()


def shard_shootout(
    sizes: Sequence[int] = (65536, 262144, 1048576),
    shards: int = 4,
    rounds: int = 48,
    seed: int = 11,
    model: str = "perceptive",
    repeats: int = 3,
) -> Dict[str, object]:
    """Time sharded whole-ring fused spans against the serial backend.

    For each ring size a jittered-equidistant state runs one
    ``rounds``-round mixed-direction span (closed-form collisions
    included) on the serial array backend and on
    :class:`~repro.parallel.shard.ShardedArrayBackend` with ``shards``
    workers.  Bit-exactness is enforced *before* any timing: the two
    engines' first spans must produce identical rotation schedules,
    offsets and dist/coll columns (SHA-256 over the raw int64
    matrices; a mismatch raises ``SimulationError``).  The shard pool
    is warmed before the timed region; per-repeat rows are phase
    shifted so the whole-stretch memo cannot short-circuit a repeat.

    Timings are best-of-``repeats`` per engine; state construction and
    scheduler setup stay outside every timed region.  ``speedup`` is
    serial over sharded -- on a single-CPU host sharding only adds
    IPC and copy-out cost (expect < 1.0x; ``cpu_count`` is recorded),
    on multicore it approaches ``min(shards, cpus)`` for spans large
    enough to amortise the exchange.

    Returns a JSON-ready report (the ``BENCH_shard.json`` payload).
    """
    import os

    from repro.core.scheduler import Scheduler
    from repro.exceptions import SimulationError
    from repro.parallel.pool import get_pool
    from repro.parallel.shard import ShardedArrayBackend
    from repro.ring import configs
    from repro.ring.stretch import Stretch
    from repro.types import Model

    repeats = max(1, repeats)
    model_enum = Model(model)
    get_pool(shards).warm()  # pool spin-up excluded from timed regions

    def make_backend(sharded: bool):
        if sharded:
            return ShardedArrayBackend(shards=shards)
        from repro.ring.backends import ArrayBackend

        return ArrayBackend()

    results: List[Dict[str, object]] = []
    for n in sizes:
        half = rounds // 2
        spans = {}
        timings: Dict[str, float] = {}
        for label, sharded in (("serial", False), ("sharded", True)):
            # Engines get identical, independently built states: the
            # generator is deterministic in (n, seed).
            state = configs.jittered_equidistant_configuration(n, seed=seed)
            # Bit-exact check span (untimed; phase 0 on both engines).
            row_a, row_b = _shard_rows(n, 0)
            check = Stretch(
                pairs=[(row_a, half), (row_b, rounds - half)]
            )
            backend = make_backend(sharded)
            sched = Scheduler(state, model_enum, backend=backend)
            res = sched.run_stretch(check)
            spans[label] = _shard_digest(res, backend)
            if sharded and n >= backend.min_n and backend.sharded_spans == 0:
                raise SimulationError(
                    "sharded engine fell back to serial execution "
                    f"at n={n}; the benchmark would time nothing"
                )
            # Timed repeats: fresh scheduler per repeat (drops the
            # previous span's history and columns), phase-shifted rows
            # (defeats the whole-stretch memo), state build excluded.
            best = None
            for rep in range(repeats):
                row_a, row_b = _shard_rows(n, rep + 1)
                stretch = Stretch(
                    pairs=[(row_a, half), (row_b, rounds - half)]
                )
                backend = make_backend(sharded)
                sched = Scheduler(state, model_enum, backend=backend)
                start = time.perf_counter()
                sched.run_stretch(stretch)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            timings[label] = best
            if sharded:
                backend.release_shared()
        if spans["serial"] != spans["sharded"]:
            raise SimulationError(
                f"shard-vs-serial outputs differ at n={n}: "
                f"{spans['serial']} != {spans['sharded']}"
            )
        results.append({
            "n": n,
            "rounds": rounds,
            "bit_exact": True,
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "speedup": round(timings["serial"] / timings["sharded"], 2),
        })
    return {
        "benchmark": "shard_shootout",
        "workload": {
            "sizes": list(sizes),
            "shards": shards,
            "rounds": rounds,
            "model": model,
            "seed": seed,
            "repeats": repeats,
        },
        "bit_exact_before_timing": True,
        "results": results,
        "speedup_at_largest_n": results[-1]["speedup"] if results else None,
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
