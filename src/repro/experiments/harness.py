"""Shared experiment utilities: rows, rendering, size sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class ExperimentRow:
    """One measured configuration of one experiment.

    Attributes:
        label: Human-readable setting (e.g. "basic, even n").
        params: Input parameters (n, N, seed, ...).
        measured: Measured quantities (round counts, sizes, ...).
        reference: The paper's bound evaluated at the same parameters.
    """

    label: str
    params: Dict[str, object] = field(default_factory=dict)
    measured: Dict[str, object] = field(default_factory=dict)
    reference: Dict[str, object] = field(default_factory=dict)


def render_table(rows: Sequence[ExperimentRow], title: str = "") -> str:
    """Render rows as an aligned text table (the bench output format)."""
    if not rows:
        return f"{title}\n(empty)"
    param_keys = sorted({k for r in rows for k in r.params})
    measured_keys = sorted({k for r in rows for k in r.measured})
    reference_keys = sorted({k for r in rows for k in r.reference})
    headers = (
        ["setting"]
        + param_keys
        + [f"meas:{k}" for k in measured_keys]
        + [f"ref:{k}" for k in reference_keys]
    )
    body: List[List[str]] = []
    for r in rows:
        body.append(
            [r.label]
            + [_fmt(r.params.get(k)) for k in param_keys]
            + [_fmt(r.measured.get(k)) for k in measured_keys]
            + [_fmt(r.reference.get(k)) for k in reference_keys]
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def geometric_sizes(start: int, stop: int, factor: int = 2) -> List[int]:
    """Sizes start, start*factor, ... up to stop (inclusive if hit)."""
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= factor
    return sizes
