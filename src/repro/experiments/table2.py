"""Table II: deterministic solutions with a common sense of direction.

The Table II setting hands agents a shared chirality for free; every
cell collapses to polylog coordination plus the same discovery phases.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.combinatorics import bounds
from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError
from repro.experiments.harness import ExperimentRow
from repro.protocols.direction_agreement import assume_common_frame
from repro.protocols.leader_election import elect_leader_common_sense
from repro.protocols.nontrivial_move import nmove_from_leader
from repro.api.session import RingSession
from repro.ring.configs import random_configuration
from repro.types import Model


def _coordination_rounds(
    n: int, model: Model, seed: int, backend: str | None = None
) -> tuple:
    state = random_configuration(n, seed=seed, common_sense=True)
    sched = Scheduler(state, model, backend=backend)
    assume_common_frame(sched)
    elect_leader_common_sense(sched)
    leader_rounds = sched.rounds
    before = sched.rounds
    nmove_from_leader(sched)
    nmove_rounds = sched.rounds - before
    return leader_rounds, nmove_rounds, state.id_bound


def row(
    n: int, model: Model, seed: int = 0, backend: str | None = None
) -> ExperimentRow:
    """One Table II row for the given model and parity of n."""
    leader_rounds, nmove_rounds, big_n = _coordination_rounds(
        n, model, seed, backend=backend
    )

    ld_state = random_configuration(n, seed=seed, common_sense=True)
    ld_session = RingSession.from_state(
        ld_state, model=model, backend=backend, common_sense=True
    )
    ld_measure: object
    if model is Model.BASIC and n % 2 == 0:
        try:
            ld_session.run("location-discovery")
            ld_measure = "SOLVED (bug!)"
        except InfeasibleProblemError:
            ld_measure = "not solvable"
        ld_reference: object = "not solvable (Lemma 5)"
    else:
        ld = ld_session.run("location-discovery")
        ld_measure = ld.rounds
        if model is Model.PERCEPTIVE and n % 2 == 0:
            ld_reference = n / 2 + bounds.nmove_perceptive_bound(big_n, n)
        else:
            ld_reference = bounds.ld_walk_bound(big_n, n)

    parity = "even" if n % 2 == 0 else "odd"
    leader_ref = (
        bounds.log_squared_bound(big_n)
        if model is Model.BASIC and n % 2 == 0
        else bounds.log_n_bound(big_n)
    )
    return ExperimentRow(
        label=f"{model.value}, {parity} n (common sense)",
        params={"n": n, "N": big_n, "seed": seed},
        measured={
            "leader": leader_rounds,
            "nmove": nmove_rounds,
            "ld": ld_measure,
        },
        reference={
            "leader": leader_ref,
            "nmove": leader_ref,  # Theorem 7: equal up to +O(log N)
            "ld": ld_reference,
        },
    )


def generate(
    odd_sizes: Sequence[int] = (9, 17),
    even_sizes: Sequence[int] = (8, 16),
    seed: int = 0,
    backend: str | None = None,
) -> List[ExperimentRow]:
    """All Table II rows."""
    rows: List[ExperimentRow] = []
    for n in odd_sizes:
        rows.append(row(n, Model.BASIC, seed=seed, backend=backend))
    for model in (Model.BASIC, Model.LAZY, Model.PERCEPTIVE):
        for n in even_sizes:
            rows.append(row(n, model, seed=seed, backend=backend))
    return rows
