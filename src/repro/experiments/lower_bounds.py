"""Lower-bound experiments: Lemma 5, Lemma 6, Lemma 23 / Cor 29.

* Lemma 5: LD in the basic model with even n is impossible; the witness
  is structural (every rotation index is even), checked by exhausting
  rotation indices over direction assignments.
* Lemma 6: every dist()-only LD protocol needs >= n-1 rounds and every
  perceptive one >= n/2; we report our protocols' measured discovery
  phases next to the floors.
* Lemma 23 / Cor 29: minimal (N,n)-distinguisher sizes, exact for small
  parameters and greedy elsewhere, against Θ(n log(N/n)/log n).
"""

from __future__ import annotations

import itertools
from typing import List

from repro.combinatorics import bounds
from repro.combinatorics.distinguishers import (
    greedy_distinguisher,
    minimal_distinguisher_size,
)
from repro.experiments.harness import ExperimentRow
from repro.api.session import RingSession
from repro.ring.configs import random_configuration
from repro.ring.kinematics import rotation_index
from repro.types import Model


def lemma5_witness(n: int = 6) -> ExperimentRow:
    """Every basic round with even n has an even rotation index, so odd
    ring distances are unreachable -- checked exhaustively."""
    assert n % 2 == 0 and n <= 12
    parities = set()
    for vel in itertools.product((-1, 1), repeat=n):
        parities.add(rotation_index(vel, n) % 2)
    return ExperimentRow(
        label="Lemma 5 witness",
        params={"n": n, "assignments": 2 ** n},
        measured={"rotation_parities": sorted(parities)},
        reference={"rotation_parities": [0]},
    )


def lemma6_floors(
    seed: int = 0, backend: str | None = None
) -> List[ExperimentRow]:
    """Measured discovery-phase rounds vs the Lemma 6 floors."""
    rows = []
    for n, model in ((9, Model.BASIC), (10, Model.LAZY),
                     (10, Model.PERCEPTIVE), (16, Model.PERCEPTIVE)):
        state = random_configuration(n, seed=seed, common_sense=False)
        result = RingSession.from_state(
            state, model=model, backend=backend
        ).run("location-discovery")
        floor = bounds.ld_lower_bound(
            n, perceptive=model is Model.PERCEPTIVE and n % 2 == 0
        )
        rows.append(ExperimentRow(
            label=f"LD floor ({model.value}, n={n})",
            params={"n": n},
            measured={"discovery_rounds": result.rounds_by_phase["discovery"]},
            reference={"floor": floor},
        ))
    return rows


def distinguisher_sizes(max_exact_universe: int = 7) -> List[ExperimentRow]:
    """Cor 29: minimal distinguisher sizes against the Θ bound."""
    rows: List[ExperimentRow] = []
    for universe in range(4, max_exact_universe + 1):
        exact = minimal_distinguisher_size(universe, 1, max_size=5)
        rows.append(ExperimentRow(
            label="exact minimal (n=1)",
            params={"N": universe, "n": 1},
            measured={"size": exact},
            reference={"theta": max(1.0, bounds.log_n_bound(universe))},
        ))
    for universe, n in ((6, 2), (8, 2)):
        exact = minimal_distinguisher_size(universe, n, max_size=4)
        greedy = len(greedy_distinguisher(universe, n))
        rows.append(ExperimentRow(
            label="exact vs greedy",
            params={"N": universe, "n": n},
            measured={"size": exact, "greedy": greedy},
            reference={
                "theta": bounds.distinguisher_counting_bound(universe, n),
            },
        ))
    for universe, n in ((10, 2), (12, 2), (12, 3)):
        greedy = len(greedy_distinguisher(universe, n))
        rows.append(ExperimentRow(
            label="greedy upper bound",
            params={"N": universe, "n": n},
            measured={"greedy": greedy},
            reference={
                "theta": bounds.distinguisher_counting_bound(universe, n),
            },
        ))
    return rows
