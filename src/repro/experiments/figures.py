"""Figures 1-3: reduction-edge costs and the RingDist anatomy.

Figures 1 and 2 of the paper annotate the reduction triangle between
leader election, nontrivial move and direction agreement with
asymptotic costs.  :func:`reduction_edges` measures each edge: given the
source problem solved, how many rounds does the target cost?

Figure 3 illustrates Algorithm 5's Shift geometry;
:func:`ringdist_anatomy` records, per iteration k = 2^i, how many agents
know their label -- the data behind the picture.
"""

from __future__ import annotations

from typing import List

from repro.combinatorics import bounds
from repro.core.scheduler import Scheduler
from repro.experiments.harness import ExperimentRow
from repro.protocols.base import KEY_LABEL, KEY_LEADER, KEY_NMOVE_DIR
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
    assume_common_frame,
)
from repro.protocols.leader_election import (
    elect_leader_common_sense,
    elect_leader_with_nontrivial_move,
)
from repro.protocols.nontrivial_move import (
    nmove_from_leader,
    nmove_seeded_family,
)
from repro.ring.configs import random_configuration
from repro.types import LocalDirection, Model, local_to_velocity


def _fresh(n, seed, model=Model.BASIC, common_sense=False, backend=None):
    state = random_configuration(n, seed=seed, common_sense=common_sense)
    return Scheduler(state, model, backend=backend), state


def _seed_nmove_omnisciently(sched, state) -> None:
    """Install a nontrivial move without consuming rounds (edge inputs
    are given for free when measuring a single reduction edge)."""
    for i, view in enumerate(sched.views):
        objective = 1 if i == 0 else -1
        local_cw = objective * int(state.chiralities[i])
        view.memory[KEY_NMOVE_DIR] = (
            LocalDirection.RIGHT if local_cw > 0 else LocalDirection.LEFT
        )


def reduction_edges(
    n: int = 12, seed: int = 0, backend: str | None = None
) -> List[ExperimentRow]:
    """Measured cost of each reduction edge in Figures 1-2."""
    rows: List[ExperimentRow] = []
    big_n = 4 * n

    # Leader -> NMove (Lemma 10, O(1)).
    sched, state = _fresh(n, seed, backend=backend)
    for i, view in enumerate(sched.views):
        view.memory[KEY_LEADER] = i == 0
    nmove_from_leader(sched)
    rows.append(ExperimentRow(
        label="leader -> nontrivial move",
        params={"n": n, "N": big_n},
        measured={"rounds": sched.rounds},
        reference={"rounds": "O(1)"},
    ))

    # NMove -> Direction agreement (Lemma 8 / Alg 1, O(1)).
    sched, state = _fresh(n, seed, backend=backend)
    _seed_nmove_omnisciently(sched, state)
    agree_direction_from_nontrivial_move(sched)
    rows.append(ExperimentRow(
        label="nontrivial move -> direction agreement",
        params={"n": n, "N": big_n},
        measured={"rounds": sched.rounds},
        reference={"rounds": "O(1)"},
    ))

    # NMove -> Leader (Lemma 9 / Alg 2, O(log N)).
    sched, state = _fresh(n, seed, backend=backend)
    _seed_nmove_omnisciently(sched, state)
    agree_direction_from_nontrivial_move(sched)
    pre = sched.rounds
    elect_leader_with_nontrivial_move(sched)
    rows.append(ExperimentRow(
        label="nontrivial move -> leader election",
        params={"n": n, "N": big_n},
        measured={"rounds": sched.rounds - pre},
        reference={"rounds": bounds.log_n_bound(big_n)},
    ))

    # Direction agreement -> Leader (Lemma 13; O(log N) lazy/perceptive,
    # O(log^2 N) constructive basic with even n).
    for model, ref in (
        (Model.LAZY, bounds.log_n_bound(big_n)),
        (Model.BASIC, bounds.log_squared_bound(big_n)),
    ):
        sched, state = _fresh(
            n, seed, model=model, common_sense=True, backend=backend
        )
        assume_common_frame(sched)
        elect_leader_common_sense(sched)
        rows.append(ExperimentRow(
            label=f"direction agreement -> leader ({model.value})",
            params={"n": n, "N": big_n},
            measured={"rounds": sched.rounds},
            reference={"rounds": ref},
        ))

    # Leader -> Direction agreement (Cor 11, O(1)).
    sched, state = _fresh(n, seed, backend=backend)
    for i, view in enumerate(sched.views):
        view.memory[KEY_LEADER] = i == 0
    nmove_from_leader(sched)
    agree_direction_from_nontrivial_move(sched)
    rows.append(ExperimentRow(
        label="leader -> direction agreement",
        params={"n": n, "N": big_n},
        measured={"rounds": sched.rounds},
        reference={"rounds": "O(1)"},
    ))
    return rows


def ringdist_anatomy(
    n: int = 24, seed: int = 0, backend: str | None = None
) -> List[ExperimentRow]:
    """Figure 3 data: labelled-agent counts per RingDist iteration."""
    from repro.protocols.neighbor_discovery import discover_neighbors
    from repro.protocols.ring_distance import ring_distances

    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE, backend=backend)
    nmove_seeded_family(sched)
    agree_direction_from_nontrivial_move(sched)
    elect_leader_with_nontrivial_move(sched)
    discover_neighbors(sched)

    rows: List[ExperimentRow] = []

    def snapshot(k: int) -> None:
        labelled = sum(
            1 for v in sched.views if v.memory.get(KEY_LABEL) is not None
        )
        label = (
            "after leader marker (distance 4)"
            if k == 1
            else f"after iteration k={k}"
        )
        rows.append(ExperimentRow(
            label=label,
            params={"n": n},
            measured={"labelled": labelled, "rounds": sched.rounds},
        ))

    ring_distances(sched, on_iteration=snapshot)
    return rows
