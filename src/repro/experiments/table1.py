"""Table I: deterministic solutions in the general setting.

For each row of the paper's Table I this module measures the actual
round counts of our implementations across a sweep of ring sizes and
reports them next to the paper's bound evaluated at the same
parameters.  Absolute constants differ (our probes pair every
information round with a restoring round, and relays cost a constant
factor); the *shapes* are what the benchmarks assert.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.combinatorics import bounds
from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError
from repro.experiments.harness import ExperimentRow
from repro.protocols.direction_agreement import (
    agree_direction_from_nontrivial_move,
    agree_direction_odd,
)
from repro.protocols.leader_election import elect_leader_common_sense
from repro.protocols.nontrivial_move import (
    nmove_from_leader,
    nmove_odd_bisection,
    nmove_seeded_family,
)
from repro.protocols.nmove_perceptive import nmove_perceptive
from repro.api.session import RingSession
from repro.ring.configs import random_configuration
from repro.types import Model


def row_odd_n(
    n: int,
    seed: int = 0,
    id_bound: int | None = None,
    backend: str | None = None,
) -> ExperimentRow:
    """Table I row 'odd n': leader O(log N), nontrivial move
    Θ(log(N/n)), direction agreement O(1), LD n + O(log N)."""
    assert n % 2 == 1
    state = random_configuration(n, seed=seed, id_bound=id_bound,
                                 common_sense=False)
    sched = Scheduler(state, Model.BASIC, backend=backend)
    agree_direction_odd(sched)
    dir_rounds = sched.rounds
    elect_leader_common_sense(sched)
    leader_rounds = sched.rounds - dir_rounds
    before = sched.rounds
    nmove_odd_bisection(sched)
    nmove_rounds = sched.rounds - before

    ld_state = random_configuration(n, seed=seed, id_bound=id_bound,
                                    common_sense=False)
    ld = RingSession.from_state(
        ld_state, model=Model.BASIC, backend=backend
    ).run("location-discovery")

    big_n = state.id_bound
    return ExperimentRow(
        label="odd n (basic)",
        params={"n": n, "N": big_n, "seed": seed},
        measured={
            "dir_agree": dir_rounds,
            "leader": leader_rounds,
            "nmove": nmove_rounds,
            "ld": ld.rounds,
        },
        reference={
            "dir_agree": 4,
            "leader": bounds.log_n_bound(big_n),
            "nmove": bounds.log_ratio_bound(big_n, n),
            "ld": bounds.ld_walk_bound(big_n, n),
        },
    )


def row_basic_even(
    n: int, seed: int = 0, backend: str | None = None
) -> ExperimentRow:
    """Table I row 'basic model, even n': coordination
    Θ(n log(N/n)/log n) worst case (measured: the published-sequence
    protocol on a random instance) and LD unsolvable."""
    assert n % 2 == 0
    state = random_configuration(n, seed=seed, common_sense=False)
    result = RingSession.from_state(
        state, model=Model.BASIC, backend=backend
    ).run("coordination")
    ld_state = random_configuration(n, seed=seed, common_sense=False)
    try:
        RingSession.from_state(
            ld_state, model=Model.BASIC, backend=backend
        ).run("location-discovery")
        ld_outcome = "SOLVED (bug!)"
    except InfeasibleProblemError:
        ld_outcome = "not solvable"
    big_n = state.id_bound
    return ExperimentRow(
        label="basic, even n",
        params={"n": n, "N": big_n, "seed": seed},
        measured={
            "nmove": result.rounds_by_phase["nontrivial_move"],
            "leader": result.rounds_by_phase["leader_election"],
            "dir_agree": result.rounds_by_phase["direction_agreement"],
            "ld": ld_outcome,
        },
        reference={
            "nmove": bounds.coordination_even_bound(big_n, n),
            "leader": bounds.coordination_even_bound(big_n, n),
            "dir_agree": bounds.coordination_even_bound(big_n, n),
            "ld": "not solvable (Lemma 5)",
        },
    )


def row_lazy_even(
    n: int, seed: int = 0, backend: str | None = None
) -> ExperimentRow:
    """Table I row 'lazy model, even n'."""
    assert n % 2 == 0
    state = random_configuration(n, seed=seed, common_sense=False)
    result = RingSession.from_state(
        state, model=Model.LAZY, backend=backend
    ).run("coordination")
    ld_state = random_configuration(n, seed=seed, common_sense=False)
    ld = RingSession.from_state(
        ld_state, model=Model.LAZY, backend=backend
    ).run("location-discovery")
    big_n = state.id_bound
    return ExperimentRow(
        label="lazy, even n",
        params={"n": n, "N": big_n, "seed": seed},
        measured={
            "nmove": result.rounds_by_phase["nontrivial_move"],
            "leader": result.rounds_by_phase["leader_election"],
            "dir_agree": result.rounds_by_phase["direction_agreement"],
            "ld": ld.rounds,
        },
        reference={
            "nmove": bounds.coordination_even_bound(big_n, n),
            "leader": bounds.coordination_even_bound(big_n, n),
            "dir_agree": bounds.coordination_even_bound(big_n, n),
            "ld": bounds.ld_lazy_even_bound(big_n, n),
        },
    )


def row_perceptive_even(
    n: int, seed: int = 0, backend: str | None = None
) -> ExperimentRow:
    """Table I row 'perceptive model, even n': NMoveS O(√n log N) and
    LD in n/2 + O(√n log² N)."""
    assert n % 2 == 0
    state = random_configuration(n, seed=seed, common_sense=False)
    sched = Scheduler(state, Model.PERCEPTIVE, backend=backend)
    stats = nmove_perceptive(sched)
    nmove_rounds = stats["rounds"]
    agree_direction_from_nontrivial_move(sched)

    ld_state = random_configuration(n, seed=seed, common_sense=False)
    ld = RingSession.from_state(
        ld_state, model=Model.PERCEPTIVE, backend=backend
    ).run("location-discovery")
    big_n = state.id_bound
    return ExperimentRow(
        label="perceptive, even n",
        params={"n": n, "N": big_n, "seed": seed},
        measured={
            "nmove": nmove_rounds,
            "ld": ld.rounds,
            "ld_discovery_phase": ld.rounds_by_phase["discovery"],
        },
        reference={
            "nmove": bounds.nmove_perceptive_bound(big_n, n),
            "ld": bounds.ld_perceptive_bound(big_n, n),
            "ld_discovery_phase": n / 2,
        },
    )


def generate(
    odd_sizes: Sequence[int] = (9, 17, 33),
    even_sizes: Sequence[int] = (8, 16, 32),
    seed: int = 0,
    backend: str | None = None,
) -> List[ExperimentRow]:
    """All Table I rows across the given sweeps."""
    rows: List[ExperimentRow] = []
    for n in odd_sizes:
        rows.append(row_odd_n(n, seed=seed, backend=backend))
    for n in even_sizes:
        rows.append(row_basic_even(n, seed=seed, backend=backend))
    for n in even_sizes:
        rows.append(row_lazy_even(n, seed=seed, backend=backend))
    for n in even_sizes:
        rows.append(row_perceptive_even(n, seed=seed, backend=backend))
    return rows
