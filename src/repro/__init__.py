"""repro — reproduction of "Deterministic Symmetry Breaking in Ring Networks".

An exact simulator for synchronous bouncing agents on a unit circle plus
the paper's complete protocol suite.  See README.md for a tour.
"""

from repro.types import Chirality, LocalDirection, Model, Observation
from repro.exceptions import (
    ConfigurationError,
    InfeasibleProblemError,
    ModelViolationError,
    ProtocolError,
    ReproError,
    SimulationError,
    SingularSystemError,
)
from repro.ring.state import RingState
from repro.ring.backends import (
    DEFAULT_BACKEND,
    FractionBackend,
    KinematicsBackend,
    LatticeBackend,
    make_backend,
)
from repro.ring.simulator import RingSimulator
from repro.ring.configs import (
    clustered_configuration,
    explicit_configuration,
    jittered_equidistant_configuration,
    random_configuration,
)
from repro.core.scheduler import Scheduler
from repro.protocols.base import CoordinationResult, LocationDiscoveryResult
from repro.protocols.full_stack import (
    solve_coordination,
    solve_location_discovery,
)
from repro.api import (
    FixedPolicy,
    Fleet,
    FunctionPolicy,
    PerAgentPolicy,
    Phase,
    Policy,
    ProtocolSpec,
    RingSession,
    RunReport,
    SessionSpec,
    as_policy,
    get_protocol,
    list_protocols,
    register,
    sweep,
)
from repro.protocols.ring_size import discover_ring_size
from repro.protocols.randomized import (
    anonymous_configuration,
    randomized_location_discovery,
)

__version__ = "1.0.0"

__all__ = [
    "RingSession",
    "Policy",
    "PerAgentPolicy",
    "FixedPolicy",
    "FunctionPolicy",
    "as_policy",
    "Phase",
    "ProtocolSpec",
    "get_protocol",
    "list_protocols",
    "register",
    "Fleet",
    "SessionSpec",
    "RunReport",
    "sweep",
    "solve_coordination",
    "solve_location_discovery",
    "discover_ring_size",
    "randomized_location_discovery",
    "anonymous_configuration",
    "CoordinationResult",
    "LocationDiscoveryResult",
    "Chirality",
    "LocalDirection",
    "Model",
    "Observation",
    "RingState",
    "RingSimulator",
    "Scheduler",
    "DEFAULT_BACKEND",
    "KinematicsBackend",
    "FractionBackend",
    "LatticeBackend",
    "make_backend",
    "random_configuration",
    "jittered_equidistant_configuration",
    "clustered_configuration",
    "explicit_configuration",
    "ReproError",
    "ConfigurationError",
    "ModelViolationError",
    "ProtocolError",
    "InfeasibleProblemError",
    "SimulationError",
    "SingularSystemError",
]
