"""Optional numpy access and vectorised kinematics helpers.

The :class:`~repro.ring.backends.ArrayBackend` stores positions, gaps
and per-rotation displacement rows as numpy arrays when numpy is
importable, and falls back to the stdlib :mod:`array` module (plain
64-bit int buffers walked by Python loops) when it is not.  All numpy
use in the package funnels through :func:`get_numpy` so that tests can
force the fallback path by monkeypatching the import, and so that no
module pays an import error at load time on numpy-less hosts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

_UNSET = object()
_numpy = _UNSET


def _import_numpy():
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def get_numpy():
    """The numpy module, or None when numpy is not installed.

    The probe import runs once and is cached; :func:`reset_numpy_cache`
    clears the cache (tests monkeypatch the import and re-probe).
    """
    global _numpy
    if _numpy is _UNSET:
        _numpy = _import_numpy()
    return _numpy


def reset_numpy_cache() -> None:
    """Forget the cached probe result (testing hook)."""
    global _numpy
    _numpy = _UNSET


def hops_to_opposite_array(np, velocities):
    """Vectorised :func:`repro.ring.kinematics.hops_to_opposite`.

    ``velocities`` is an int array over {-1, +1} (mixed, idle-free).
    Returns an int64 array: per agent, the ring distance to the nearest
    opposite mover measured in the agent's direction of travel.  Uses
    the classic suffix-min / prefix-max index trick on the doubled ring
    instead of the legacy double scan.
    """
    n = velocities.shape[0]
    idx = np.arange(2 * n, dtype=np.int64)
    doubled = np.concatenate([velocities, velocities])
    nxt = np.where(doubled < 0, idx, 2 * n)
    nxt = np.minimum.accumulate(nxt[::-1])[::-1]
    prv = np.maximum.accumulate(np.where(doubled > 0, idx, -1))
    ahead = (nxt - idx)[:n]
    behind = (idx - prv)[n:]
    return np.where(velocities > 0, ahead, behind)


def signs_to_directions(row) -> List:
    """Translate a local-frame sign row (+1/-1/0) to LocalDirection."""
    from repro.types import LocalDirection

    right, left, idle = (
        LocalDirection.RIGHT,
        LocalDirection.LEFT,
        LocalDirection.IDLE,
    )
    return [right if s > 0 else (left if s < 0 else idle) for s in row]


def directions_to_signs(directions: Sequence) -> List[int]:
    """Translate LocalDirection entries to local-frame signs."""
    from repro.types import LocalDirection

    right, left = LocalDirection.RIGHT, LocalDirection.LEFT
    return [
        1 if d is right else (-1 if d is left else 0) for d in directions
    ]
