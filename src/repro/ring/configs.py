"""Initial-configuration generators for experiments and tests.

Positions are produced as rationals with a power-of-two denominator so
that every quantity the simulator derives (collision times halve gaps)
keeps a small bounded denominator -- exact arithmetic stays fast.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.ring.state import RingState
from repro.types import Chirality

_DEFAULT_DENOM_BITS = 20


def _distinct_positions(
    rng: random.Random, n: int, denom_bits: int
) -> List[Fraction]:
    denom = 1 << denom_bits
    if n > denom:
        raise ConfigurationError("denominator too small for n distinct slots")
    ticks = rng.sample(range(denom), n)
    ticks.sort()
    return [Fraction(t, denom) for t in ticks]


def _chiralities(
    rng: random.Random, n: int, common_sense: Optional[bool]
) -> List[Chirality]:
    if common_sense:
        return [Chirality.CLOCKWISE] * n
    flips = [rng.choice((Chirality.CLOCKWISE, Chirality.ANTICLOCKWISE))
             for _ in range(n)]
    if common_sense is False and len(set(flips)) == 1 and n > 1:
        # Guarantee at least one disagreement when explicitly asked for
        # a non-common sense of direction.
        flips[0] = flips[0].flipped()
    return flips


def _ids(rng: random.Random, n: int, id_bound: int) -> List[int]:
    if id_bound < n:
        raise ConfigurationError(f"id_bound {id_bound} < n {n}")
    return rng.sample(range(1, id_bound + 1), n)


def random_configuration(
    n: int,
    id_bound: Optional[int] = None,
    seed: int = 0,
    common_sense: Optional[bool] = None,
    denom_bits: int = _DEFAULT_DENOM_BITS,
) -> RingState:
    """Uniformly random distinct positions, IDs and chiralities.

    Args:
        n: Number of agents (must exceed 4).
        id_bound: The ID range bound N; defaults to ``4 * n``.
        seed: PRNG seed -- configurations are reproducible.
        common_sense: ``True`` for a shared sense of direction, ``False``
            to force at least one flipped agent, ``None`` for uniform
            random chiralities.
        denom_bits: Positions are multiples of ``2**-denom_bits``.
    """
    rng = random.Random(seed)
    id_bound = id_bound if id_bound is not None else 4 * n
    return RingState(
        positions=_distinct_positions(rng, n, denom_bits),
        ids=_ids(rng, n, id_bound),
        chiralities=_chiralities(rng, n, common_sense),
        id_bound=id_bound,
    )


def jittered_equidistant_configuration(
    n: int,
    id_bound: Optional[int] = None,
    seed: int = 0,
    common_sense: Optional[bool] = None,
    jitter_bits: int = 8,
) -> RingState:
    """Near-equidistant agents with small random jitter.

    Near-symmetric placements are the stress case for protocols that
    infer structure from collision distances: many gaps are equal, so
    equality tests must rely on the protocol logic rather than generic
    position randomness.
    """
    rng = random.Random(seed)
    id_bound = id_bound if id_bound is not None else 4 * n
    denom = n * (1 << jitter_bits)
    positions = []
    for i in range(n):
        jitter = rng.randrange(1 << (jitter_bits - 1))
        positions.append(Fraction(i * (1 << jitter_bits) + jitter, denom))
    return RingState(
        positions=positions,
        ids=_ids(rng, n, id_bound),
        chiralities=_chiralities(rng, n, common_sense),
        id_bound=id_bound,
    )


def clustered_configuration(
    n: int,
    id_bound: Optional[int] = None,
    seed: int = 0,
    common_sense: Optional[bool] = None,
    cluster_span: Fraction = Fraction(1, 16),
) -> RingState:
    """All agents packed into a small arc of the circle.

    Adversarial for discovery protocols: one giant gap dominates, and
    collision cascades traverse the dense cluster.
    """
    rng = random.Random(seed)
    id_bound = id_bound if id_bound is not None else 4 * n
    denom_bits = _DEFAULT_DENOM_BITS
    denom = 1 << denom_bits
    span_ticks = int(cluster_span * denom)
    if span_ticks < n:
        raise ConfigurationError("cluster_span too small for n agents")
    ticks = rng.sample(range(span_ticks), n)
    ticks.sort()
    positions = [Fraction(t, denom) for t in ticks]
    return RingState(
        positions=positions,
        ids=_ids(rng, n, id_bound),
        chiralities=_chiralities(rng, n, common_sense),
        id_bound=id_bound,
    )


def explicit_configuration(
    positions: Sequence[Fraction],
    ids: Sequence[int],
    chiralities: Sequence[Chirality],
    id_bound: int,
) -> RingState:
    """Build a :class:`RingState` from explicit components (validated)."""
    return RingState(
        positions=list(positions),
        ids=list(ids),
        chiralities=list(chiralities),
        id_bound=id_bound,
    )
