"""Pluggable kinematics backends: exact Fractions vs. integer lattice.

A *kinematics backend* owns the arithmetic of round execution.  Given a
:class:`~repro.ring.state.RingState` and the objective velocities of
one round it produces the full :class:`~repro.types.RoundOutcome`
(per-agent ``dist()``/``coll()`` observations, the rotation index, the
collision-event count) and commits the post-round positions back to the
state.  :class:`~repro.ring.simulator.RingSimulator` delegates every
round to its backend, so the two implementations are interchangeable
and property-tested to produce bit-identical outcomes:

* :class:`FractionBackend` -- the reference implementation.  All
  positions, gaps and collision arcs are :class:`fractions.Fraction`
  values; every addition pays a gcd.  Kept both as the semantics anchor
  and for states whose positions would induce an awkwardly large
  common denominator.

* :class:`LatticeBackend` -- the performance implementation.  At
  attach time it rescales all positions to integers over the single
  common denominator ``D`` (the lcm of the position denominators).
  Velocities are in {-1, 0, +1} and rounds last one unit, so every
  reachable end-of-round position stays on the lattice ``Z/D`` forever
  (Lemma 1: rounds merely rotate the position multiset), and every
  collision time/place within a round lands on ``Z/(2D)`` (token
  crossings meet at half-gaps).  The backend therefore tracks one
  shared scale integer instead of per-value gcds, and each round is
  pure integer arithmetic:

  - positions are never rebuilt: a single rotation ``offset`` into the
    frozen base arrays replaces per-round list rebuilds, and the
    committed position list reuses the original ``Fraction`` objects;
  - gap and prefix-sum arrays over the base slots are computed once at
    attach and never again (the gap *sequence* only rotates);
  - per-velocity-pattern derivations (rotation index, nearest-opposite
    hop counts) and per-rotation displacement arcs are memoised, so
    batched execution of repeating rounds does no re-derivation;
  - ``Fraction`` and :class:`~repro.types.Observation` objects are
    interned by integer numerator, so repeated observations cost one
    dictionary lookup instead of a gcd plus two allocations;
  - when the event engine is needed (cross-validation, or lazy rounds
    under a collision-reporting model) it runs in integer tick space
    (:func:`~repro.ring.collisions.simulate_collisions_ticks`).

Backends hold derived state, so they detect external position writes
(``restore()``, manual assignment) through ``RingState.version`` and
resynchronise automatically.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import SimulationError
from repro.geometry import ccw_arc, cw_arc
from repro.ring.collisions import (
    simulate_collisions,
    simulate_collisions_ticks,
)
from repro.ring.kinematics import (
    first_collisions_basic,
    hops_to_opposite,
    rotation_index,
)
from repro.ring.state import RingState
from repro.types import Chirality, Observation, RoundOutcome

#: Backend used when none is requested explicitly.
DEFAULT_BACKEND = "lattice"

#: Names :func:`make_backend` recognises (the CLI choices derive from
#: this -- extend it when registering a new backend).
BACKEND_NAMES = ("lattice", "fraction")

BackendSpec = Union[None, str, "KinematicsBackend"]


class KinematicsBackend(ABC):
    """Executes rounds against an attached :class:`RingState`."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.state: Optional[RingState] = None

    def attach(self, state: RingState) -> None:
        """Bind the backend to a world state (derives internal caches).

        A backend instance serves exactly one world: silently re-pointing
        a shared instance would make one simulator mutate another's
        state.
        """
        if self.state is not None and self.state is not state:
            raise SimulationError(
                "backend is already attached to a different RingState; "
                "create one backend instance per simulator"
            )
        self.state = state

    @abstractmethod
    def execute_round(
        self,
        velocities: Sequence[int],
        need_coll: bool,
        cross_validate: bool = False,
    ) -> RoundOutcome:
        """Run one unit round and commit the result to the state.

        Args:
            velocities: Objective per-agent velocities in {-1, 0, +1}.
            need_coll: Whether ``coll()`` observations must be produced
                (the perceptive model).  Event simulation is skipped
                whenever the round provably does not need it: closed
                forms cover all-moving rounds, and no-collision rounds
                are recognised from the velocity pattern alone.
            cross_validate: Additionally run the event-driven engine and
                assert it agrees with the closed form (slow; tests).
        """


def make_backend(spec: BackendSpec) -> "KinematicsBackend":
    """Resolve a backend spec: an instance, a name, or None (default).

    Recognised names: ``"lattice"`` (default) and ``"fraction"``.
    """
    if isinstance(spec, KinematicsBackend):
        return spec
    if spec is None:
        spec = DEFAULT_BACKEND
    if spec == "lattice":
        return LatticeBackend()
    if spec == "fraction":
        return FractionBackend()
    raise SimulationError(
        f"unknown kinematics backend {spec!r}; expected one of "
        f"{', '.join(repr(n) for n in BACKEND_NAMES)}, or a "
        "KinematicsBackend instance"
    )


class FractionBackend(KinematicsBackend):
    """Reference backend: exact :class:`fractions.Fraction` arithmetic."""

    name = "fraction"

    def execute_round(
        self,
        velocities: Sequence[int],
        need_coll: bool,
        cross_validate: bool = False,
    ) -> RoundOutcome:
        state = self.state
        n = state.n
        start = state._positions  # internal read; never mutated here
        r = rotation_index(velocities, n)
        has_idle = any(v == 0 for v in velocities)
        need_events = cross_validate or (need_coll and has_idle)

        coll: List[Optional[Fraction]] = [None] * n
        events = 0
        if need_coll and not has_idle:
            coll = first_collisions_basic(
                start, velocities, prefix=state._prefix_cached()
            )
        final_closed = [start[(i + r) % n] for i in range(n)]
        if need_events:
            traces, events = simulate_collisions(start, velocities)
            final_event = [tr.final_position for tr in traces]
            if need_coll:
                coll_event = [tr.coll_distance for tr in traces]
                if not has_idle and coll_event != coll:
                    raise SimulationError(
                        "closed-form and event-driven first collisions "
                        f"disagree: closed={coll} event={coll_event}"
                    )
                coll = coll_event
            if final_event != final_closed:
                raise SimulationError(
                    "closed-form and event-driven final positions disagree "
                    f"(rotation index {r}); closed={final_closed} "
                    f"event={final_event}"
                )

        chir = state.chiralities
        observations = tuple(
            Observation(
                dist=(
                    cw_arc(start[i], final_closed[i])
                    if chir[i] is Chirality.CLOCKWISE
                    else ccw_arc(start[i], final_closed[i])
                ),
                coll=coll[i],
            )
            for i in range(n)
        )

        state.commit_round(final_closed, r)
        return RoundOutcome(
            observations=observations,
            rotation_index=r,
            collision_events=events,
        )


class LatticeBackend(KinematicsBackend):
    """Integer-lattice backend: one shared denominator, int arithmetic.

    See the module docstring for the representation.  All arcs are
    integer numerators over the shared scale ``D`` (positions, dists)
    or ``2D`` (first-collision arcs); the event engine runs on a
    ``1/(4D)`` tick grid so that tentative heap entries stay integral.
    """

    name = "lattice"

    def attach(self, state: RingState) -> None:
        super().attach(state)
        self._sync()

    def _sync(self) -> None:
        """(Re)derive the lattice representation from the state."""
        state = self.state
        pos = state.positions
        n = len(pos)
        scale = math.lcm(*(p.denominator for p in pos))
        num = [p.numerator * (scale // p.denominator) for p in pos]
        gap = [(num[(i + 1) % n] - num[i]) % scale for i in range(n)]
        prefix = [0] * (n + 1)
        for i in range(n):
            prefix[i + 1] = prefix[i] + gap[i]
        if prefix[n] != scale:
            raise SimulationError(
                "positions are not in clockwise ring order: gaps sum to "
                f"{prefix[n]}/{scale}, expected 1"
            )
        self.n = n
        self.scale = scale
        self.offset = 0
        self._ring = list(pos)  # frozen base Fractions, slot-indexed
        self._ring2 = self._ring + self._ring  # doubled: rotation by slice
        self._num = num  # slot-indexed integer positions over `scale`
        self._gap = gap
        self._prefix = prefix
        self._chir_cw = [
            c is Chirality.CLOCKWISE for c in state.chiralities
        ]
        # Memoisation tables (see module docstring).
        self._patterns: Dict[
            Tuple[int, ...],
            Tuple[int, bool, bool, Optional[List[Tuple[int, int]]]],
        ] = {}
        self._dist_rows: Dict[int, Tuple[List[int], List[int]]] = {}
        self._fracs1: Dict[int, Fraction] = {}  # numerator over scale
        self._fracs2: Dict[int, Fraction] = {}  # numerator over 2*scale
        self._obs_plain: Dict[int, Observation] = {}  # dist only
        self._obs_coll: Dict[Tuple[int, int], Observation] = {}
        self._obs_quarter: Dict[Tuple[int, int], Observation] = {}
        # Whole-round memo: (velocities, offset, need_coll) -> (outcome,
        # rotation).  Cyclic workloads (probe/restore loops, sweeps)
        # repeat exact (pattern, offset) states, collapsing a round to
        # one dictionary hit plus the state commit.
        self._outcomes: Dict[
            Tuple[Tuple[int, ...], int, bool], Tuple[RoundOutcome, int]
        ] = {}
        self._version = state.version

    def _arc_slots(self, s: int, hops: int) -> int:
        """Clockwise arc numerator over ``hops`` slots starting at ``s``."""
        prefix = self._prefix
        j = s + hops
        if j <= self.n:
            return prefix[j] - prefix[s]
        return self.scale - prefix[s] + prefix[j - self.n]

    def _frac2(self, numerator: int) -> Fraction:
        """Interned ``Fraction(numerator, 2 * scale)``."""
        value = self._fracs2.get(numerator)
        if value is None:
            value = Fraction(numerator, 2 * self.scale)
            self._fracs2[numerator] = value
        return value

    def _pattern(
        self, velocities: Tuple[int, ...]
    ) -> Tuple[int, bool, bool, Optional[List[Tuple[int, int]]]]:
        """Memoised per-velocity-pattern derivations.

        Returns ``(r, has_idle, mixed, coll_spec)``.  ``coll_spec`` is
        only present for idle-free mixed rounds (the only rounds with
        closed-form collisions): per agent, ``(rel, hops)`` such that
        the first-collision arc spans ``hops`` slots starting ``rel``
        slots from the agent's own (clockwise movers look ahead from
        their slot, anticlockwise movers from ``hops`` slots behind).
        """
        pat = self._patterns.get(velocities)
        if pat is None:
            if len(self._patterns) > 8192:  # bound adversarial growth
                self._patterns.clear()
            # rotation_index, with C-speed counting on the tuple.
            r = (velocities.count(1) - velocities.count(-1)) % self.n
            has_idle = 0 in velocities
            mixed = 1 in velocities and -1 in velocities
            coll_spec = None
            if mixed and not has_idle:
                coll_spec = [
                    (0, h) if velocities[i] > 0 else (-h, h)
                    for i, h in enumerate(hops_to_opposite(velocities))
                ]
            pat = (r, has_idle, mixed, coll_spec)
            self._patterns[velocities] = pat
        return pat

    def _dist_row(self, r: int) -> Tuple[List[int], List[int]]:
        """Per-slot ``dist()`` numerators of a rotation-r round, in both
        frames: ``(clockwise_row, anticlockwise_row)``."""
        rows = self._dist_rows.get(r)
        if rows is None:
            scale = self.scale
            cw = [self._arc_slots(s, r) for s in range(self.n)]
            ccw = [scale - a if a else 0 for a in cw]
            rows = (cw, ccw)
            self._dist_rows[r] = rows
        return rows

    def _event_round(
        self, velocities: Sequence[int]
    ) -> Tuple[List[Optional[int]], List[int], int]:
        """Run the integer event engine for the current round.

        Returns ``(coll_quarter_ticks, final_coords, events)`` with
        collision arcs in ``1/(4*scale)`` ticks.
        """
        n, off = self.n, self.offset
        num = self._num
        coords = [4 * num[(i + off) % n] for i in range(n)]
        traces, events = simulate_collisions_ticks(
            coords, velocities, ring_ticks=4 * self.scale
        )
        coll = [tr.coll_ticks for tr in traces]
        final = [tr.final_coord for tr in traces]
        return coll, final, events

    def execute_round(
        self,
        velocities: Sequence[int],
        need_coll: bool,
        cross_validate: bool = False,
    ) -> RoundOutcome:
        state = self.state
        if state.version != self._version:
            self._sync()
        if not isinstance(velocities, tuple):
            velocities = tuple(velocities)
        n, off, scale = self.n, self.offset, self.scale
        if not cross_validate:
            hit = self._outcomes.get((velocities, off, need_coll))
            if hit is not None:
                outcome, r = hit
                off += r
                if off >= n:
                    off -= n
                self.offset = off
                state.commit_round(self._ring2[off:off + n], r)
                self._version = state.version
                return outcome
        r, has_idle, mixed, coll_spec = self._pattern(velocities)
        need_events = cross_validate or (need_coll and has_idle)

        events = 0
        coll_quarter: Optional[List[Optional[int]]] = None
        if need_events:
            coll_quarter, events = self._validate_events(
                velocities, r, need_coll,
                closed_coll=need_coll and coll_spec is not None,
            )

        # Assemble observations from interned values.  The loops are
        # deliberately flat int/dict code: this is the innermost hot
        # path of every simulation in the library.
        if len(self._obs_coll) > 1 << 18:  # bound adversarial growth
            self._obs_coll.clear()
            self._obs_quarter.clear()
        cw_row, ccw_row = self._dist_row(r)
        chir_cw = self._chir_cw
        prefix = self._prefix
        obs_list: List[Observation] = [None] * n  # type: ignore[list-item]
        s = off
        if need_coll and coll_spec is not None:
            obs_cache = self._obs_coll
            fracs1 = self._fracs1
            for i in range(n):
                d = cw_row[s] if chir_cw[i] else ccw_row[s]
                rel, h = coll_spec[i]
                s0 = s + rel
                if s0 < 0:
                    s0 += n
                elif s0 >= n:
                    s0 -= n
                j = s0 + h
                if j <= n:
                    a = prefix[j] - prefix[s0]
                else:
                    a = scale - prefix[s0] + prefix[j - n]
                key = (d, a)
                ob = obs_cache.get(key)
                if ob is None:
                    df = fracs1.get(d)
                    if df is None:
                        df = fracs1[d] = Fraction(d, scale)
                    ob = Observation(dist=df, coll=self._frac2(a))
                    obs_cache[key] = ob
                obs_list[i] = ob
                s += 1
                if s == n:
                    s = 0
        elif coll_quarter is not None and need_coll:
            # Lazy rounds under a collision-reporting model: arcs from
            # the event engine, in 1/(4*scale) ticks.
            obs_cache_q = self._obs_quarter
            obs_plain = self._obs_plain
            scale4 = 4 * scale
            for i in range(n):
                d = cw_row[s] if chir_cw[i] else ccw_row[s]
                q = coll_quarter[i]
                if q is None:
                    ob = obs_plain.get(d)
                    if ob is None:
                        ob = Observation(dist=self._frac1(d))
                        obs_plain[d] = ob
                else:
                    keyq = (d, q)
                    ob = obs_cache_q.get(keyq)
                    if ob is None:
                        ob = Observation(
                            dist=self._frac1(d), coll=Fraction(q, scale4)
                        )
                        obs_cache_q[keyq] = ob
                obs_list[i] = ob
                s += 1
                if s == n:
                    s = 0
        else:
            obs_plain = self._obs_plain
            fracs1 = self._fracs1
            for i in range(n):
                d = cw_row[s] if chir_cw[i] else ccw_row[s]
                ob = obs_plain.get(d)
                if ob is None:
                    df = fracs1.get(d)
                    if df is None:
                        df = fracs1[d] = Fraction(d, scale)
                    ob = Observation(dist=df)
                    obs_plain[d] = ob
                obs_list[i] = ob
                s += 1
                if s == n:
                    s = 0

        outcome = RoundOutcome(
            observations=tuple(obs_list),
            rotation_index=r,
            collision_events=events,
        )
        if not need_events:
            # Closed-form rounds are pure functions of (pattern, offset):
            # memoise the whole immutable outcome.
            if len(self._outcomes) > 1 << 16:
                self._outcomes.clear()
            self._outcomes[(velocities, self.offset, need_coll)] = (
                outcome, r,
            )

        # Commit: rotate the offset; the position list reuses the frozen
        # base Fraction objects (no arithmetic, no gcd).
        off = off + r
        if off >= n:
            off -= n
        self.offset = off
        state.commit_round(self._ring2[off:off + n], r)
        self._version = state.version
        return outcome

    def _frac1(self, numerator: int) -> Fraction:
        """Interned ``Fraction(numerator, scale)``."""
        value = self._fracs1.get(numerator)
        if value is None:
            value = Fraction(numerator, self.scale)
            self._fracs1[numerator] = value
        return value

    def _validate_events(
        self,
        velocities: Tuple[int, ...],
        r: int,
        need_coll: bool,
        closed_coll: bool,
    ) -> Tuple[Optional[List[Optional[int]]], int]:
        """Run the integer event engine; cross-check the closed forms.

        Returns ``(coll_quarter_ticks, events)`` where the collision
        arcs are only returned when the closed form cannot supply them
        (idle rounds under a collision-reporting model).
        """
        n, off, scale = self.n, self.offset, self.scale
        ev_coll, ev_final, events = self._event_round(velocities)
        num = self._num
        expected = [4 * num[(i + off + r) % n] for i in range(n)]
        if ev_final != expected:
            raise SimulationError(
                "closed-form and event-driven final positions disagree "
                f"(rotation index {r}); closed={expected} "
                f"event={ev_final} (in 1/(4*{scale}) ticks)"
            )
        if not need_coll:
            return None, events
        if closed_coll:
            # Recompute the closed-form arcs here (tick-doubled) and
            # compare; the main loop then uses the closed form.
            _, _, _, coll_spec = self._pattern(velocities)
            arc = self._arc_slots
            for i in range(n):
                rel, h = coll_spec[i]
                a = arc((i + off + rel) % n, h)
                if ev_coll[i] != 2 * a:
                    raise SimulationError(
                        "closed-form and event-driven first collisions "
                        f"disagree for agent {i}: closed={2 * a} "
                        f"event={ev_coll[i]} (in 1/(4*{scale}) ticks)"
                    )
            return None, events
        if all(v == velocities[0] for v in velocities) and 0 not in velocities:
            if any(c is not None for c in ev_coll):
                raise SimulationError(
                    "event engine reported collisions in a "
                    "uniform-direction round"
                )
            return None, events
        return ev_coll, events
