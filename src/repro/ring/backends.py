"""Pluggable kinematics backends: exact Fractions vs. integer lattice.

A *kinematics backend* owns the arithmetic of round execution.  Given a
:class:`~repro.ring.state.RingState` and the objective velocities of
one round it produces the full :class:`~repro.types.RoundOutcome`
(per-agent ``dist()``/``coll()`` observations, the rotation index, the
collision-event count) and commits the post-round positions back to the
state.  :class:`~repro.ring.simulator.RingSimulator` delegates every
round to its backend, so the two implementations are interchangeable
and property-tested to produce bit-identical outcomes:

* :class:`FractionBackend` -- the reference implementation.  All
  positions, gaps and collision arcs are :class:`fractions.Fraction`
  values; every addition pays a gcd.  Kept both as the semantics anchor
  and for states whose positions would induce an awkwardly large
  common denominator.

* :class:`ArrayBackend` -- the whole-column implementation for large
  rings (n >= 10^4): a :class:`LatticeBackend` whose positions, gaps
  and per-rotation displacement rows additionally live in numpy int64
  arrays (stdlib :mod:`array` buffers when numpy is absent -- see
  :mod:`repro.ring.arrayops`).  Single rounds run on the inherited
  integer path unchanged; its :meth:`ArrayBackend.execute_stretch`
  advances a whole *fused stretch* (probe/restore pairs, bit-exchange
  frames, ``run_fixed`` batches -- see :mod:`repro.ring.stretch`) in
  one closed-form vectorised step, emitting observation *columns* that
  materialise per-agent ``Observation`` objects only when read, and
  committing positions lazily (``state.positions`` is built only on an
  external read).  Whole stretches are memoised by (velocity rows,
  rotation offset), so repeating probe/restore loops collapse to one
  dictionary hit.

* :class:`LatticeBackend` -- the performance implementation.  At
  attach time it rescales all positions to integers over the single
  common denominator ``D`` (the lcm of the position denominators).
  Velocities are in {-1, 0, +1} and rounds last one unit, so every
  reachable end-of-round position stays on the lattice ``Z/D`` forever
  (Lemma 1: rounds merely rotate the position multiset), and every
  collision time/place within a round lands on ``Z/(2D)`` (token
  crossings meet at half-gaps).  The backend therefore tracks one
  shared scale integer instead of per-value gcds, and each round is
  pure integer arithmetic:

  - positions are never rebuilt: a single rotation ``offset`` into the
    frozen base arrays replaces per-round list rebuilds, and the
    committed position list reuses the original ``Fraction`` objects;
  - gap and prefix-sum arrays over the base slots are computed once at
    attach and never again (the gap *sequence* only rotates);
  - per-velocity-pattern derivations (rotation index, nearest-opposite
    hop counts) and per-rotation displacement arcs are memoised, so
    batched execution of repeating rounds does no re-derivation;
  - ``Fraction`` and :class:`~repro.types.Observation` objects are
    interned by integer numerator, so repeated observations cost one
    dictionary lookup instead of a gcd plus two allocations;
  - when the event engine is needed (cross-validation, or lazy rounds
    under a collision-reporting model) it runs in integer tick space
    (:func:`~repro.ring.collisions.simulate_collisions_ticks`).

Backends hold derived state, so they detect external position writes
(``restore()``, manual assignment) through ``RingState.version`` and
resynchronise automatically.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import SimulationError
from repro.geometry import ccw_arc, cw_arc
from repro.ring.collisions import (
    simulate_collisions,
    simulate_collisions_ticks,
)
from repro.ring.kinematics import (
    first_collisions_basic,
    hops_to_opposite,
    rotation_index,
)
from repro.ring.state import RingState
from repro.types import Chirality, Observation, RoundOutcome

#: Backend used when none is requested explicitly.
DEFAULT_BACKEND = "lattice"

#: Names :func:`make_backend` recognises (the CLI choices derive from
#: this -- extend it when registering a new backend).
BACKEND_NAMES = ("lattice", "fraction", "array")

BackendSpec = Union[None, str, "KinematicsBackend"]


class KinematicsBackend(ABC):
    """Executes rounds against an attached :class:`RingState`."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.state: Optional[RingState] = None

    def attach(self, state: RingState) -> None:
        """Bind the backend to a world state (derives internal caches).

        A backend instance serves exactly one world: silently re-pointing
        a shared instance would make one simulator mutate another's
        state.
        """
        if self.state is not None and self.state is not state:
            raise SimulationError(
                "backend is already attached to a different RingState; "
                "create one backend instance per simulator"
            )
        self.state = state

    @abstractmethod
    def execute_round(
        self,
        velocities: Sequence[int],
        need_coll: bool,
        cross_validate: bool = False,
    ) -> RoundOutcome:
        """Run one unit round and commit the result to the state.

        Args:
            velocities: Objective per-agent velocities in {-1, 0, +1}.
            need_coll: Whether ``coll()`` observations must be produced
                (the perceptive model).  Event simulation is skipped
                whenever the round provably does not need it: closed
                forms cover all-moving rounds, and no-collision rounds
                are recognised from the velocity pattern alone.
            cross_validate: Additionally run the event-driven engine and
                assert it agrees with the closed form (slow; tests).
        """

    def commit_rotation(self, r: int) -> None:
        """Advance the state by a bare rotation of ``r`` ring places.

        By Lemma 1 a round's *entire* effect on the world is a rotation
        of the position multiset, so a span whose observations are
        never read (the trailing REVERSEDROUNDs of probe/restore pairs
        under ``unchecked`` execution) can be applied as one rotation
        without simulating any round.  No round is counted and no
        observations exist; callers own the proof that the skipped
        span's net rotation is exactly ``r``.
        """
        self.state.apply_rotation(r % self.state.n)


def make_backend(spec: BackendSpec) -> "KinematicsBackend":
    """Resolve a backend spec: an instance, a name, or None (default).

    Recognised names: ``"lattice"`` (default), ``"fraction"`` and
    ``"array"``.
    """
    if isinstance(spec, KinematicsBackend):
        return spec
    if spec is None:
        spec = DEFAULT_BACKEND
    if spec == "lattice":
        return LatticeBackend()
    if spec == "fraction":
        return FractionBackend()
    if spec == "array":
        return ArrayBackend()
    raise SimulationError(
        f"unknown kinematics backend {spec!r}; expected one of "
        f"{', '.join(repr(n) for n in BACKEND_NAMES)}, or a "
        "KinematicsBackend instance"
    )


class FractionBackend(KinematicsBackend):
    """Reference backend: exact :class:`fractions.Fraction` arithmetic."""

    name = "fraction"

    def execute_round(
        self,
        velocities: Sequence[int],
        need_coll: bool,
        cross_validate: bool = False,
    ) -> RoundOutcome:
        state = self.state
        n = state.n
        start = state._pos()  # internal read; never mutated here
        r = rotation_index(velocities, n)
        has_idle = any(v == 0 for v in velocities)
        need_events = cross_validate or (need_coll and has_idle)

        coll: List[Optional[Fraction]] = [None] * n
        events = 0
        if need_coll and not has_idle:
            coll = first_collisions_basic(
                start, velocities, prefix=state._prefix_cached()
            )
        final_closed = [start[(i + r) % n] for i in range(n)]
        if need_events:
            traces, events = simulate_collisions(start, velocities)
            final_event = [tr.final_position for tr in traces]
            if need_coll:
                coll_event = [tr.coll_distance for tr in traces]
                if not has_idle and coll_event != coll:
                    raise SimulationError(
                        "closed-form and event-driven first collisions "
                        f"disagree: closed={coll} event={coll_event}"
                    )
                coll = coll_event
            if final_event != final_closed:
                raise SimulationError(
                    "closed-form and event-driven final positions disagree "
                    f"(rotation index {r}); closed={final_closed} "
                    f"event={final_event}"
                )

        chir = state.chiralities
        observations = tuple(
            Observation(
                dist=(
                    cw_arc(start[i], final_closed[i])
                    if chir[i] is Chirality.CLOCKWISE
                    else ccw_arc(start[i], final_closed[i])
                ),
                coll=coll[i],
            )
            for i in range(n)
        )

        state.commit_round(final_closed, r)
        return RoundOutcome(
            observations=observations,
            rotation_index=r,
            collision_events=events,
        )


class LatticeBackend(KinematicsBackend):
    """Integer-lattice backend: one shared denominator, int arithmetic.

    See the module docstring for the representation.  All arcs are
    integer numerators over the shared scale ``D`` (positions, dists)
    or ``2D`` (first-collision arcs); the event engine runs on a
    ``1/(4D)`` tick grid so that tentative heap entries stay integral.
    """

    name = "lattice"

    def attach(self, state: RingState) -> None:
        super().attach(state)
        self._sync()

    def _sync(self) -> None:
        """(Re)derive the lattice representation from the state."""
        state = self.state
        pos = state.positions
        n = len(pos)
        scale = math.lcm(*(p.denominator for p in pos))
        num = [p.numerator * (scale // p.denominator) for p in pos]
        gap = [(num[(i + 1) % n] - num[i]) % scale for i in range(n)]
        prefix = [0] * (n + 1)
        for i in range(n):
            prefix[i + 1] = prefix[i] + gap[i]
        if prefix[n] != scale:
            raise SimulationError(
                "positions are not in clockwise ring order: gaps sum to "
                f"{prefix[n]}/{scale}, expected 1"
            )
        self.n = n
        self.scale = scale
        self.offset = 0
        self._ring = list(pos)  # frozen base Fractions, slot-indexed
        self._ring2 = self._ring + self._ring  # doubled: rotation by slice
        self._num = num  # slot-indexed integer positions over `scale`
        self._gap = gap
        self._prefix = prefix
        self._chir_cw = [
            c is Chirality.CLOCKWISE for c in state.chiralities
        ]
        # Memoisation tables (see module docstring).
        self._patterns: Dict[
            Tuple[int, ...],
            Tuple[int, bool, bool, Optional[List[Tuple[int, int]]]],
        ] = {}
        self._dist_rows: Dict[int, Tuple[List[int], List[int]]] = {}
        self._fracs1: Dict[int, Fraction] = {}  # numerator over scale
        self._fracs2: Dict[int, Fraction] = {}  # numerator over 2*scale
        self._obs_plain: Dict[int, Observation] = {}  # dist only
        self._obs_coll: Dict[Tuple[int, int], Observation] = {}
        self._obs_quarter: Dict[Tuple[int, int], Observation] = {}
        # Whole-round memo: (velocities, offset, need_coll) -> (outcome,
        # rotation).  Cyclic workloads (probe/restore loops, sweeps)
        # repeat exact (pattern, offset) states, collapsing a round to
        # one dictionary hit plus the state commit.
        self._outcomes: Dict[
            Tuple[Tuple[int, ...], int, bool], Tuple[RoundOutcome, int]
        ] = {}
        self._version = state.version

    def _arc_slots(self, s: int, hops: int) -> int:
        """Clockwise arc numerator over ``hops`` slots starting at ``s``."""
        prefix = self._prefix
        j = s + hops
        if j <= self.n:
            return prefix[j] - prefix[s]
        return self.scale - prefix[s] + prefix[j - self.n]

    def _frac2(self, numerator: int) -> Fraction:
        """Interned ``Fraction(numerator, 2 * scale)``."""
        value = self._fracs2.get(numerator)
        if value is None:
            value = Fraction(numerator, 2 * self.scale)
            self._fracs2[numerator] = value
        return value

    def _pattern(
        self, velocities: Tuple[int, ...]
    ) -> Tuple[int, bool, bool, Optional[List[Tuple[int, int]]]]:
        """Memoised per-velocity-pattern derivations.

        Returns ``(r, has_idle, mixed, coll_spec)``.  ``coll_spec`` is
        only present for idle-free mixed rounds (the only rounds with
        closed-form collisions): per agent, ``(rel, hops)`` such that
        the first-collision arc spans ``hops`` slots starting ``rel``
        slots from the agent's own (clockwise movers look ahead from
        their slot, anticlockwise movers from ``hops`` slots behind).
        """
        pat = self._patterns.get(velocities)
        if pat is None:
            if len(self._patterns) > 8192:  # bound adversarial growth
                self._patterns.clear()
            # rotation_index, with C-speed counting on the tuple.
            r = (velocities.count(1) - velocities.count(-1)) % self.n
            has_idle = 0 in velocities
            mixed = 1 in velocities and -1 in velocities
            coll_spec = None
            if mixed and not has_idle:
                coll_spec = [
                    (0, h) if velocities[i] > 0 else (-h, h)
                    for i, h in enumerate(hops_to_opposite(velocities))
                ]
            pat = (r, has_idle, mixed, coll_spec)
            self._patterns[velocities] = pat
        return pat

    def _dist_row(self, r: int) -> Tuple[List[int], List[int]]:
        """Per-slot ``dist()`` numerators of a rotation-r round, in both
        frames: ``(clockwise_row, anticlockwise_row)``."""
        rows = self._dist_rows.get(r)
        if rows is None:
            scale = self.scale
            cw = [self._arc_slots(s, r) for s in range(self.n)]
            ccw = [scale - a if a else 0 for a in cw]
            rows = (cw, ccw)
            self._dist_rows[r] = rows
        return rows

    def _event_round(
        self, velocities: Sequence[int]
    ) -> Tuple[List[Optional[int]], List[int], int]:
        """Run the integer event engine for the current round.

        Returns ``(coll_quarter_ticks, final_coords, events)`` with
        collision arcs in ``1/(4*scale)`` ticks.
        """
        n, off = self.n, self.offset
        num = self._num
        coords = [4 * num[(i + off) % n] for i in range(n)]
        traces, events = simulate_collisions_ticks(
            coords, velocities, ring_ticks=4 * self.scale
        )
        coll = [tr.coll_ticks for tr in traces]
        final = [tr.final_coord for tr in traces]
        return coll, final, events

    def execute_round(
        self,
        velocities: Sequence[int],
        need_coll: bool,
        cross_validate: bool = False,
    ) -> RoundOutcome:
        state = self.state
        if state.version != self._version:
            self._sync()
        if not isinstance(velocities, tuple):
            velocities = tuple(velocities)
        n, off, scale = self.n, self.offset, self.scale
        if not cross_validate:
            hit = self._outcomes.get((velocities, off, need_coll))
            if hit is not None:
                outcome, r = hit
                off += r
                if off >= n:
                    off -= n
                self.offset = off
                state.commit_round(self._ring2[off:off + n], r)
                self._version = state.version
                return outcome
        r, has_idle, mixed, coll_spec = self._pattern(velocities)
        need_events = cross_validate or (need_coll and has_idle)

        events = 0
        coll_quarter: Optional[List[Optional[int]]] = None
        if need_events:
            coll_quarter, events = self._validate_events(
                velocities, r, need_coll,
                closed_coll=need_coll and coll_spec is not None,
            )

        # Assemble observations from interned values.  The loops are
        # deliberately flat int/dict code: this is the innermost hot
        # path of every simulation in the library.
        if len(self._obs_coll) > 1 << 18:  # bound adversarial growth
            self._obs_coll.clear()
            self._obs_quarter.clear()
        cw_row, ccw_row = self._dist_row(r)
        chir_cw = self._chir_cw
        prefix = self._prefix
        obs_list: List[Observation] = [None] * n  # type: ignore[list-item]
        s = off
        if need_coll and coll_spec is not None:
            obs_cache = self._obs_coll
            fracs1 = self._fracs1
            for i in range(n):
                d = cw_row[s] if chir_cw[i] else ccw_row[s]
                rel, h = coll_spec[i]
                s0 = s + rel
                if s0 < 0:
                    s0 += n
                elif s0 >= n:
                    s0 -= n
                j = s0 + h
                if j <= n:
                    a = prefix[j] - prefix[s0]
                else:
                    a = scale - prefix[s0] + prefix[j - n]
                key = (d, a)
                ob = obs_cache.get(key)
                if ob is None:
                    df = fracs1.get(d)
                    if df is None:
                        df = fracs1[d] = Fraction(d, scale)
                    ob = Observation(dist=df, coll=self._frac2(a))
                    obs_cache[key] = ob
                obs_list[i] = ob
                s += 1
                if s == n:
                    s = 0
        elif coll_quarter is not None and need_coll:
            # Lazy rounds under a collision-reporting model: arcs from
            # the event engine, in 1/(4*scale) ticks.
            obs_cache_q = self._obs_quarter
            obs_plain = self._obs_plain
            scale4 = 4 * scale
            for i in range(n):
                d = cw_row[s] if chir_cw[i] else ccw_row[s]
                q = coll_quarter[i]
                if q is None:
                    ob = obs_plain.get(d)
                    if ob is None:
                        ob = Observation(dist=self._frac1(d))
                        obs_plain[d] = ob
                else:
                    keyq = (d, q)
                    ob = obs_cache_q.get(keyq)
                    if ob is None:
                        ob = Observation(
                            dist=self._frac1(d), coll=Fraction(q, scale4)
                        )
                        obs_cache_q[keyq] = ob
                obs_list[i] = ob
                s += 1
                if s == n:
                    s = 0
        else:
            obs_plain = self._obs_plain
            fracs1 = self._fracs1
            for i in range(n):
                d = cw_row[s] if chir_cw[i] else ccw_row[s]
                ob = obs_plain.get(d)
                if ob is None:
                    df = fracs1.get(d)
                    if df is None:
                        df = fracs1[d] = Fraction(d, scale)
                    ob = Observation(dist=df)
                    obs_plain[d] = ob
                obs_list[i] = ob
                s += 1
                if s == n:
                    s = 0

        outcome = RoundOutcome(
            observations=tuple(obs_list),
            rotation_index=r,
            collision_events=events,
        )
        if not need_events:
            # Closed-form rounds are pure functions of (pattern, offset):
            # memoise the whole immutable outcome.
            if len(self._outcomes) > 1 << 16:
                self._outcomes.clear()
            self._outcomes[(velocities, self.offset, need_coll)] = (
                outcome, r,
            )

        # Commit: rotate the offset; the position list reuses the frozen
        # base Fraction objects (no arithmetic, no gcd).
        off = off + r
        if off >= n:
            off -= n
        self.offset = off
        state.commit_round(self._ring2[off:off + n], r)
        self._version = state.version
        return outcome

    def commit_rotation(self, r: int) -> None:
        """Bare-rotation commit on the integer representation: one
        offset move plus a slice of the frozen base ring (no
        arithmetic, no resync)."""
        state = self.state
        if state.version != self._version:
            self._sync()
        n = self.n
        r %= n
        off = self.offset + r
        if off >= n:
            off -= n
        self.offset = off
        state.commit_round(self._ring2[off:off + n], r)
        self._version = state.version

    def _frac1(self, numerator: int) -> Fraction:
        """Interned ``Fraction(numerator, scale)``."""
        value = self._fracs1.get(numerator)
        if value is None:
            value = Fraction(numerator, self.scale)
            self._fracs1[numerator] = value
        return value

    def _validate_events(
        self,
        velocities: Tuple[int, ...],
        r: int,
        need_coll: bool,
        closed_coll: bool,
    ) -> Tuple[Optional[List[Optional[int]]], int]:
        """Run the integer event engine; cross-check the closed forms.

        Returns ``(coll_quarter_ticks, events)`` where the collision
        arcs are only returned when the closed form cannot supply them
        (idle rounds under a collision-reporting model).
        """
        n, off, scale = self.n, self.offset, self.scale
        ev_coll, ev_final, events = self._event_round(velocities)
        num = self._num
        expected = [4 * num[(i + off + r) % n] for i in range(n)]
        if ev_final != expected:
            raise SimulationError(
                "closed-form and event-driven final positions disagree "
                f"(rotation index {r}); closed={expected} "
                f"event={ev_final} (in 1/(4*{scale}) ticks)"
            )
        if not need_coll:
            return None, events
        if closed_coll:
            # Recompute the closed-form arcs here (tick-doubled) and
            # compare; the main loop then uses the closed form.
            _, _, _, coll_spec = self._pattern(velocities)
            arc = self._arc_slots
            for i in range(n):
                rel, h = coll_spec[i]
                a = arc((i + off + rel) % n, h)
                if ev_coll[i] != 2 * a:
                    raise SimulationError(
                        "closed-form and event-driven first collisions "
                        f"disagree for agent {i}: closed={2 * a} "
                        f"event={ev_coll[i]} (in 1/(4*{scale}) ticks)"
                    )
            return None, events
        if all(v == velocities[0] for v in velocities) and 0 not in velocities:
            if any(c is not None for c in ev_coll):
                raise SimulationError(
                    "event engine reported collisions in a "
                    "uniform-direction round"
                )
            return None, events
        return ev_coll, events


class ArrayStretchResult:
    """Columnar outcome of one fused stretch (see :mod:`repro.ring.stretch`).

    Holds the span's observation columns as raw integer numerators --
    ``dist`` over ``scale``, ``coll`` over ``2 * scale`` with ``-1``
    encoding "no collision" -- and materialises per-agent
    :class:`~repro.types.Observation` rows only when something reads
    them, through the owning backend's interning tables (so a
    materialised row is bit-identical to, and shares objects with, the
    scalar path's output).

    ``np`` is the numpy module when the columns are int64 ndarrays
    (vectorised consumers branch on it), else None (stdlib ``array``
    fallback rows; per-round ``coll`` rows may be None when the round
    provably had no closed-form collisions).
    """

    __slots__ = (
        "_backend", "k", "n", "scale", "rotations", "collision_events",
        "np", "_dist", "_coll", "_obs",
    )

    def __init__(self, backend, rotations, dist, coll, vectorised):
        self._backend = backend
        self.k = len(rotations)
        self.n = backend.n
        self.scale = backend.scale
        self.rotations = rotations
        self.collision_events = 0
        self.np = backend.np if vectorised else None
        self._dist = dist
        self._coll = coll
        self._obs: Dict[int, Tuple[Observation, ...]] = {}

    def dist_ints(self, j: int):
        """Round ``j``'s dist numerators over ``scale`` (agent frame)."""
        return self._dist[j]

    def coll_ints(self, j: int):
        """Round ``j``'s coll numerators over ``2 * scale`` (-1 = None),
        or None when the model reports no collisions (or, on the
        fallback representation, when the round had none)."""
        if self._coll is None:
            return None
        return self._coll[j]

    def dist_ints_all(self):
        """The whole span's dist numerators as a ``(k, n)`` int64
        matrix on the vectorised representation, else None (columnar
        harvests fall back to per-round reads)."""
        if self.np is None:
            return None
        return self._dist

    def truncated(self, kept: int) -> "ArrayStretchResult":
        """The first ``kept`` rounds of this span as a fresh outcome.

        Used by speculative execution to cut an optimistically
        computed span back to the stop predicate's firing round; the
        column storage is shared (numpy slices are views), only the
        bookkeeping shrinks.
        """
        if not 0 < kept <= self.k:
            raise SimulationError(
                f"cannot keep {kept} of a {self.k}-round stretch"
            )
        coll = None if self._coll is None else self._coll[:kept]
        return ArrayStretchResult(
            self._backend,
            self.rotations[:kept],
            self._dist[:kept],
            coll,
            self.np is not None,
        )

    def observations(self, j: int) -> Tuple[Observation, ...]:
        """Round ``j`` materialised as interned Observations (cached)."""
        cached = self._obs.get(j)
        if cached is not None:
            return cached
        backend = self._backend
        # Same adversarial-growth bound the scalar hot path applies to
        # the shared interning tables.
        if len(backend._obs_coll) > 1 << 18:
            backend._obs_coll.clear()
            backend._obs_quarter.clear()
        np = self.np
        dn = self._dist[j]
        dn = dn.tolist() if np is not None else list(dn)
        cn = self.coll_ints(j)
        if cn is not None:
            cn = cn.tolist() if np is not None else list(cn)
        n = self.n
        obs_list: List[Observation] = [None] * n  # type: ignore[list-item]
        if cn is None:
            obs_plain = backend._obs_plain
            for i in range(n):
                d = dn[i]
                ob = obs_plain.get(d)
                if ob is None:
                    ob = Observation(dist=backend._frac1(d))
                    obs_plain[d] = ob
                obs_list[i] = ob
        else:
            obs_plain = backend._obs_plain
            obs_coll = backend._obs_coll
            for i in range(n):
                d = dn[i]
                a = cn[i]
                if a < 0:
                    ob = obs_plain.get(d)
                    if ob is None:
                        ob = Observation(dist=backend._frac1(d))
                        obs_plain[d] = ob
                else:
                    key = (d, a)
                    ob = obs_coll.get(key)
                    if ob is None:
                        ob = Observation(
                            dist=backend._frac1(d), coll=backend._frac2(a)
                        )
                        obs_coll[key] = ob
                obs_list[i] = ob
        cached = tuple(obs_list)
        self._obs[j] = cached
        return cached

    def outcome(self, j: int) -> RoundOutcome:
        """Round ``j`` as a materialised :class:`RoundOutcome`."""
        return RoundOutcome(
            observations=self.observations(j),
            rotation_index=self.rotations[j],
            collision_events=0,
        )

    def dists(self, j: int) -> List[Fraction]:
        """Round ``j``'s dist column as interned Fractions."""
        backend = self._backend
        dn = self._dist[j]
        dn = dn.tolist() if self.np is not None else dn
        frac1 = backend._frac1
        return [frac1(d) for d in dn]

    def colls(self, j: int) -> List[Optional[Fraction]]:
        """Round ``j``'s coll column (None cells where no collision)."""
        cn = self.coll_ints(j)
        if cn is None:
            return [None] * self.n
        cn = cn.tolist() if self.np is not None else cn
        backend = self._backend
        frac2 = backend._frac2
        return [None if a < 0 else frac2(a) for a in cn]


class ArrayBackend(LatticeBackend):
    """Whole-column backend: lattice arithmetic plus fused stretches.

    Single rounds execute on the inherited integer-lattice path (so the
    per-round semantics, memo tables and event-engine integration are
    byte-for-byte the proven ones); the numpy mirrors built at attach
    time serve :meth:`execute_stretch`, which advances a whole fused
    span in closed form:

    - per-round rotation indices come from whole-row counts, offsets
      accumulate, and each round's agent-frame ``dist()`` numerators
      are one doubled-prefix gather (``p2[s + r] - p2[s]``) -- the
      rotation-offset trick of the lattice backend, applied to columns;
    - closed-form first-collision numerators come from the vectorised
      nearest-opposite-hop derivation (suffix-min/prefix-max on the
      doubled ring), memoised per velocity row;
    - the event engine's integer heap keys are assembled as vectorised
      int arrays when it runs at all; fused rounds are closed-form by
      construction, so the heap is only ever built for rounds that
      actually need contact resolution (cross-validation, or idle
      rounds under a collision-reporting model), never for stretches;
    - whole stretches are memoised by (velocity rows, offset), so
      probe/restore loops repeat as single dictionary hits;
    - positions commit lazily: the post-span list is a pending thunk on
      the state, built only if something reads ``state.positions``;
    - :meth:`execute_speculative` runs a data-dependent span (a
      :class:`~repro.ring.stretch.SpeculativeStretch` plan)
      optimistically in full, evaluates the stop predicate against the
      emitted columns and cuts the commit back to the firing round --
      the rollback is a rotation-offset rewind on the lazy commit.

    Without numpy the same fused execution runs over stdlib
    :mod:`array` int buffers (no vectorised consumer columns, but still
    no per-round Observation materialisation).  Stretches whose shared
    denominator does not fit comfortably in int64 are declined
    (``execute_stretch`` returns None) and the simulator falls back to
    scalar rounds.
    """

    name = "array"
    supports_stretch = True

    def __init__(self) -> None:
        super().__init__()
        from repro.ring.arrayops import get_numpy

        self.np = get_numpy()

    def _sync(self) -> None:
        super()._sync()
        n, scale = self.n, self.scale
        self._fusable = scale.bit_length() <= 61
        self._stretch_memo: Dict[tuple, Tuple[ArrayStretchResult, int]] = {}
        self._row_memo: Dict[object, tuple] = {}
        np = self.np
        if np is not None and self._fusable:
            base = np.asarray(self._prefix, dtype=np.int64)  # length n+1
            self._p2 = np.concatenate([base[:-1], base + scale])
            self._chir_np = np.asarray(self._chir_cw, dtype=bool)
            self._base_idx = np.arange(n, dtype=np.int64)
            self._num_np = np.asarray(self._num, dtype=np.int64)
        else:
            self._p2 = None

    # -- vectorised event-engine plumbing --------------------------------

    def _event_round(self, velocities):
        """As the lattice version, with the integer heap keys (initial
        quarter-tick coordinates) assembled as one vectorised gather
        when numpy is available."""
        np = self.np
        if np is None or self._p2 is None:
            return super()._event_round(velocities)
        n, off = self.n, self.offset
        idx = self._base_idx + off
        idx = np.where(idx >= n, idx - n, idx)
        coords = (4 * self._num_np[idx]).tolist()
        traces, events = simulate_collisions_ticks(
            coords, velocities, ring_ticks=4 * self.scale
        )
        coll = [tr.coll_ticks for tr in traces]
        final = [tr.final_coord for tr in traces]
        return coll, final, events

    # -- fused stretches -------------------------------------------------

    def _vel_row_np(self, row):
        """Normalise one velocity row to a contiguous int8 ndarray."""
        np = self.np
        arr = np.ascontiguousarray(row, dtype=np.int8)
        if arr.shape != (self.n,):
            raise SimulationError(
                f"velocity row of length {arr.shape} for n={self.n}"
            )
        return arr

    def _derive_np(self, arr, key):
        """Per-velocity-row derivations for the vectorised path:
        ``(r, has_idle, mixed, rel, hops)`` with rel/hops int64 arrays
        for idle-free mixed rows (else None)."""
        hit = self._row_memo.get(key)
        if hit is not None:
            return hit
        np = self.np
        if len(self._row_memo) > 4096:
            self._row_memo.clear()
        npos = int(np.count_nonzero(arr == 1))
        nneg = int(np.count_nonzero(arr == -1))
        r = (npos - nneg) % self.n
        has_idle = npos + nneg < self.n
        mixed = npos > 0 and nneg > 0
        rel = hops = None
        if mixed and not has_idle:
            from repro.ring.arrayops import hops_to_opposite_array

            hops = hops_to_opposite_array(np, arr.astype(np.int64))
            rel = np.where(arr > 0, 0, -hops)
        derived = (r, has_idle, mixed, rel, hops)
        self._row_memo[key] = derived
        return derived

    def execute_stretch(self, vel_pairs, need_coll: bool):
        """Advance one fused stretch; commits the state lazily.

        Args:
            vel_pairs: Run-length velocity rows ``[(row, count), ...]``
                (objective velocities in {-1, 0, +1}; int8 ndarrays or
                plain int sequences).
            need_coll: Whether ``coll()`` columns must be produced.

        Returns:
            An :class:`ArrayStretchResult`, or None when the span
            cannot be fused (oversized denominator, or an idle round
            under a collision-reporting model) -- the simulator then
            falls back to scalar rounds.
        """
        plan = self._plan_pairs(vel_pairs, need_coll)
        if plan is None:
            return None
        derived, key_rows, total = plan

        memo_key = (tuple(key_rows), self.offset, need_coll)
        hit = self._stretch_memo.get(memo_key)
        if hit is None:
            result, r_total = self._compute_span(derived, need_coll, total)
            if len(self._stretch_memo) > 4096:
                self._stretch_memo.clear()
            self._stretch_memo[memo_key] = (result, r_total)
        else:
            result, r_total = hit

        self._commit_span(total, r_total)
        return result

    def execute_speculative(self, vel_pairs, stop, need_coll: bool):
        """Advance a speculative span; cut it back where ``stop`` fires.

        The planned span is executed optimistically in full (the same
        closed-form column computation as :meth:`execute_stretch`, but
        unmemoised: speculative spans are one-shot and their columns
        can be large); ``stop(result, j)`` is then evaluated against
        the emitted observation columns for ``j = 0, 1, ...`` in order.
        At the first firing round the span is truncated to ``j + 1``
        rounds and the optimistic advance rolls back to that boundary
        -- positions commit lazily through the rotation offset, so the
        rollback is an offset rewind, never a position copy.  With
        ``stop=None`` (or a predicate that never fires) the whole span
        commits.

        Returns the (possibly truncated) stretch outcome, or None when
        the span cannot be fused -- the simulator then falls back to
        the interleaved scalar execute/evaluate loop.
        """
        plan = self._plan_pairs(vel_pairs, need_coll)
        if plan is None:
            return None
        derived, _key_rows, total = plan
        result, r_total = self._compute_span(derived, need_coll, total)
        kept = total
        if stop is not None:
            for j in range(total):
                if stop(result, j):
                    kept = j + 1
                    break
        if kept != total:
            result = result.truncated(kept)
            # Rotation-offset rewind: the kept prefix's cumulative
            # rotation replaces the optimistic full-span one.
            n = self.n
            r_total = 0
            for r in result.rotations:
                r_total += r
            r_total %= n
        self._commit_span(kept, r_total)
        return result

    def _plan_pairs(self, vel_pairs, need_coll: bool):
        """Normalise and derive a span's velocity rows.

        Returns ``(derived, key_rows, total)`` -- per-row derivations,
        hashable memo-key rows, and the round count -- or None when the
        span cannot be fused (oversized denominator, or an idle round
        under a collision-reporting model).
        """
        state = self.state
        if state.version != self._version:
            self._sync()
        if not self._fusable:
            return None
        np = self.np
        total = 0
        derived = []
        key_rows = []
        if np is not None:
            for row, count in vel_pairs:
                arr = self._vel_row_np(row)
                key = arr.tobytes()
                pat = self._derive_np(arr, key)
                if need_coll and pat[1]:  # idle round needing coll()
                    return None
                derived.append((pat, count))
                key_rows.append((key, count))
                total += count
        else:
            for row, count in vel_pairs:
                vel = row if isinstance(row, tuple) else tuple(row)
                pat = self._pattern(vel)
                if need_coll and pat[1]:
                    return None
                derived.append((pat, count))
                key_rows.append((vel, count))
                total += count
        return derived, key_rows, total

    def _compute_span(self, derived, need_coll: bool, total: int):
        """Dispatch the span computation to the active representation."""
        if self.np is not None:
            return self._compute_stretch_np(derived, need_coll, total)
        return self._compute_stretch_py(derived, need_coll, total)

    def _span_rotations(self, derived):
        """A span's per-round rotation indices and its net rotation.

        By Lemma 1 this scalar schedule is the *entire* round-boundary
        state of a fused span: every round's columns are gathers
        against the frozen mirrors at the accumulated offset.  The
        sharded executor (:mod:`repro.parallel.shard`) ships exactly
        this to its workers -- the "merge" between rounds is each
        worker replaying the same offsets.
        """
        n = self.n
        rotations: List[int] = []
        off = self.offset
        for (r, *_rest), count in derived:
            for _ in range(count):
                rotations.append(r)
                off += r
                if off >= n:
                    off -= n
        return rotations, (off - self.offset) % n

    def _commit_span(self, rounds: int, r_total: int) -> None:
        """Advance the offset and lazily commit ``rounds`` rounds."""
        n = self.n
        off = self.offset + r_total
        if off >= n:
            off -= n
        self.offset = off
        ring2 = self._ring2
        state = self.state
        state.commit_stretch(
            lambda: ring2[off:off + n], rounds, r_total
        )
        self._version = state.version

    def _compute_stretch_np(self, derived, need_coll, total):
        """Vectorised span computation (numpy path)."""
        np = self.np
        n, scale = self.n, self.scale
        p2, base, chir = self._p2, self._base_idx, self._chir_np
        dist = np.empty((total, n), dtype=np.int64)
        coll = (
            np.full((total, n), -1, dtype=np.int64) if need_coll else None
        )
        rotations: List[int] = []
        off = self.offset
        j = 0
        for (r, _idle, mixed, rel, hops), count in derived:
            for _ in range(count):
                s = base + off
                s = np.where(s >= n, s - n, s)
                cw = p2[s + r] - p2[s]
                dist[j] = np.where(chir, cw, (scale - cw) % scale)
                if coll is not None and rel is not None:
                    s0 = s + rel
                    s0 = np.where(s0 < 0, s0 + n, s0)
                    s0 = np.where(s0 >= n, s0 - n, s0)
                    coll[j] = p2[s0 + hops] - p2[s0]
                rotations.append(r)
                off += r
                if off >= n:
                    off -= n
                j += 1
        r_total = (off - self.offset) % n
        return (
            ArrayStretchResult(self, rotations, dist, coll, True),
            r_total,
        )

    def _compute_stretch_py(self, derived, need_coll, total):
        """Fused span over stdlib array buffers (numpy-absent path)."""
        from array import array

        n, scale = self.n, self.scale
        prefix = self._prefix
        chir = self._chir_cw
        dist_rows: List[array] = []
        coll_rows: Optional[List[Optional[array]]] = (
            [] if need_coll else None
        )
        rotations: List[int] = []
        off = self.offset
        for (r, _idle, _mixed, coll_spec), count in derived:
            for _ in range(count):
                cw_row, ccw_row = self._dist_row(r)
                drow = array("q", bytes(8 * n))
                s = off
                for i in range(n):
                    drow[i] = cw_row[s] if chir[i] else ccw_row[s]
                    s += 1
                    if s == n:
                        s = 0
                dist_rows.append(drow)
                if coll_rows is not None:
                    if coll_spec is None:
                        coll_rows.append(None)
                    else:
                        crow = array("q", bytes(8 * n))
                        s = off
                        for i in range(n):
                            rel, h = coll_spec[i]
                            s0 = s + rel
                            if s0 < 0:
                                s0 += n
                            elif s0 >= n:
                                s0 -= n
                            e = s0 + h
                            if e <= n:
                                crow[i] = prefix[e] - prefix[s0]
                            else:
                                crow[i] = (
                                    scale - prefix[s0] + prefix[e - n]
                                )
                            s += 1
                            if s == n:
                                s = 0
                        coll_rows.append(crow)
                rotations.append(r)
                off += r
                if off >= n:
                    off -= n
        r_total = (off - self.offset) % n
        return (
            ArrayStretchResult(self, rotations, dist_rows, coll_rows, False),
            r_total,
        )
