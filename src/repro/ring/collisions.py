"""Exact event-driven simulation of one round of bouncing agents.

The closed-form kinematics (Lemma 1) give final positions cheaply, but
the *perceptive* model also needs each agent's first collision, which
depends on the full cascade of bounces.  This module simulates those
cascades exactly:

* positions and times are :class:`fractions.Fraction`, so collision
  times are exact and simultaneous events are detected reliably;
* collisions happen only between ring-adjacent agents (no overpassing),
  so the event queue tracks one potential event per adjacent pair;
* every collision exchanges the two velocities.  This single rule covers
  both cases of the paper's model: two moving agents bounce, and a
  moving agent hitting an idle one stops while the idle one continues in
  the mover's objective direction;
* simultaneous multi-agent contacts are resolved by repeated pairwise
  exchanges at the same timestamp, which terminates because each
  exchange strictly reduces the number of adjacent velocity inversions
  at the contact point (a bubble-sort argument).

The simulator reports, per agent: final position, first-collision time,
first-collision position, and the arc travelled before the first
collision (the paper's ``coll()``).

Two engines share the algorithm:

* :func:`simulate_collisions` -- the reference engine over
  :class:`fractions.Fraction` positions and times (supports arbitrary
  rational durations and trajectory recording);
* :func:`simulate_collisions_ticks` -- the integer-lattice engine used
  by :class:`repro.ring.backends.LatticeBackend`.  Positions and times
  are plain ``int`` tick counts, so heap keys compare with native
  integer comparisons and no gcd is ever taken.  Callers pre-scale
  coordinates onto a tick grid fine enough that every event lands on
  it: with initial positions on ``Z/D`` and unit speeds, all token
  crossings (hence all agent collisions -- agents are relabelled
  tokens) happen at times and places on ``Z/(2D)``; a grid of
  ``1/(4D)`` additionally makes every *tentative* pair-event
  prediction integral, not just the realised ones.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.geometry import normalize
from repro.types import RoundOutcome  # noqa: F401  (re-exported context)

_ZERO = Fraction(0)
_ONE = Fraction(1)


@dataclass
class AgentTrace:
    """Per-agent outcome of an event-driven round simulation.

    Attributes:
        final_position: Position at the end of the round, in [0, 1).
        first_collision_time: Time of the agent's first collision, or
            ``None`` if it never collided during the round.
        first_collision_position: Where that collision happened.
        coll_distance: Arc travelled from the round's start position to
            the first collision -- 0 for an initially idle agent that is
            struck, ``None`` if the agent never collided.
        collisions: Total number of collisions the agent experienced.
        path: When path recording is enabled, the agent's full
            piecewise-linear trajectory as breakpoints
            ``(time, position, velocity_after)`` -- one at t = 0, one
            per velocity change, one at the round's end.  ``None`` when
            recording is off.
    """

    final_position: Fraction
    first_collision_time: Optional[Fraction] = None
    first_collision_position: Optional[Fraction] = None
    coll_distance: Optional[Fraction] = None
    collisions: int = 0
    path: Optional[List[Tuple[Fraction, Fraction, int]]] = None


def position_at(
    path: Sequence[Tuple[Fraction, Fraction, int]], t: Fraction
) -> Fraction:
    """Evaluate a recorded trajectory at time ``t`` (exact).

    The path's breakpoints carry the velocity *after* each breakpoint,
    so the position between breakpoints is linear interpolation along
    the circle with that velocity.
    """
    if not path:
        raise ValueError("empty path")
    if t < path[0][0]:
        raise ValueError(f"time {t} precedes the path start {path[0][0]}")
    prev = path[0]
    for entry in path[1:]:
        if entry[0] > t:
            break
        prev = entry
    t0, p0, v0 = prev
    return normalize(p0 + v0 * (t - t0))


class _World:
    """Mutable simulation state with lazily-advanced positions."""

    def __init__(self, positions: Sequence[Fraction], velocities: Sequence[int]):
        self.n = len(positions)
        # Unwrapped coordinates: agent i's coordinate lives on the real
        # line; agent i+1's unwrapped coordinate exceeds agent i's.  Using
        # unwrapped coordinates sidesteps all mod-1 corner cases in gap
        # arithmetic; positions are re-wrapped only on output.
        self.coord: List[Fraction] = []
        base = normalize(positions[0])
        prev = base
        total = base
        for i, p in enumerate(positions):
            p = normalize(p)
            if i == 0:
                self.coord.append(p)
                prev = p
                continue
            step = normalize(p - prev)
            if step == 0:
                raise SimulationError("coincident agent positions")
            total += step
            self.coord.append(total)
            prev = p
        self.vel: List[int] = list(velocities)
        self.last_t: List[Fraction] = [_ZERO] * self.n
        self.traces = [AgentTrace(final_position=_ZERO) for _ in range(self.n)]
        self.start_moving = [v != 0 for v in velocities]
        self.events = 0

    def coord_at(self, i: int, t: Fraction) -> Fraction:
        return self.coord[i] + self.vel[i] * (t - self.last_t[i])

    def advance(self, i: int, t: Fraction) -> None:
        self.coord[i] = self.coord_at(i, t)
        self.last_t[i] = t

    def pair_gap(self, i: int, t: Fraction) -> Fraction:
        """Gap ahead of agent i (towards agent i+1) at time t.

        For the wrap pair (n-1, 0) the follower is one full turn behind
        in unwrapped coordinates.
        """
        j = (i + 1) % self.n
        wrap = _ONE if j == 0 else _ZERO
        return (self.coord_at(j, t) + wrap) - self.coord_at(i, t)


def _pair_event_time(world: _World, i: int, now: Fraction) -> Optional[Fraction]:
    """Next collision time of adjacent pair (i, i+1), or None."""
    j = (i + 1) % world.n
    closing = world.vel[i] - world.vel[j]
    if closing <= 0:
        return None
    gap = world.pair_gap(i, now)
    if gap < 0:
        raise SimulationError("negative gap: ring order violated")
    return now + gap / closing


def _event_budget(n: int, duration_units: float) -> int:
    """Upper bound on collision events for a round of ``duration_units``.

    2 * nC * nA bounds token crossings per unit of time (each opposite
    pair of tokens meets at most twice per unit lap); idle agents only
    convert crossings into short exchange chains, covered by doubling.
    The bound scales linearly with the round duration -- the historical
    constant ``4*n*n + 16`` was only justified for unit rounds.
    """
    units = max(1, math.ceil(duration_units))
    return 4 * n * n * units + 16


def simulate_collisions(
    positions: Sequence[Fraction],
    velocities: Sequence[int],
    duration: Fraction = _ONE,
    record_paths: bool = False,
) -> Tuple[List[AgentTrace], int]:
    """Simulate one round exactly; return per-agent traces and event count.

    Args:
        positions: Agent positions in clockwise ring order, in [0, 1).
        velocities: Objective velocities in {-1, 0, +1}, same order.
        duration: Round length (the paper's rounds last 1 time unit).
        record_paths: Record each agent's full piecewise trajectory in
            ``AgentTrace.path`` (costs memory proportional to events).

    Returns:
        ``(traces, n_events)`` where ``traces[i]`` describes agent i.
    """
    n = len(positions)
    if n != len(velocities):
        raise SimulationError("positions/velocities length mismatch")
    if any(v not in (-1, 0, 1) for v in velocities):
        raise SimulationError("velocities must be in {-1, 0, +1}")

    world = _World(positions, velocities)
    if record_paths:
        for a in range(n):
            world.traces[a].path = [
                (_ZERO, normalize(world.coord[a]), world.vel[a])
            ]
    # Heap entries: (time, version, pair_index).  Stale entries are
    # skipped by version check.
    version = [0] * n
    heap: List[Tuple[Fraction, int, int]] = []

    def push(i: int, now: Fraction) -> None:
        t = _pair_event_time(world, i, now)
        if t is not None and t <= duration:
            heapq.heappush(heap, (t, version[i], i))

    for i in range(n):
        push(i, _ZERO)

    guard = 0
    max_events = _event_budget(n, duration)
    while heap:
        t, ver, i = heapq.heappop(heap)
        if ver != version[i]:
            continue
        j = (i + 1) % n
        guard += 1
        if guard > max_events:
            raise SimulationError(
                f"collision event budget exceeded: processed {guard} events "
                f"for n={n} agents over duration={duration}, but at most "
                f"{max_events} are possible (2*nC*nA token crossings per "
                "unit time plus idle hand-off slack); this indicates a "
                "simulator bug such as a stale-event loop"
            )
        world.advance(i, t)
        world.advance(j, t)
        # Record collision for both participants.
        for a in (i, j):
            tr = world.traces[a]
            tr.collisions += 1
            if tr.first_collision_time is None:
                tr.first_collision_time = t
                tr.first_collision_position = normalize(world.coord[a])
                tr.coll_distance = t if world.start_moving[a] else _ZERO
        world.vel[i], world.vel[j] = world.vel[j], world.vel[i]
        world.events += 1
        if record_paths:
            for a in (i, j):
                world.traces[a].path.append(
                    (t, normalize(world.coord[a]), world.vel[a])
                )
        for p in ((i - 1) % n, i, j):
            version[p] += 1
            push(p, t)

    for a in range(n):
        world.advance(a, duration)
        world.traces[a].final_position = normalize(world.coord[a])
        if record_paths:
            world.traces[a].path.append(
                (duration, world.traces[a].final_position, world.vel[a])
            )

    return world.traces, world.events


@dataclass
class TickTrace:
    """Per-agent outcome of an integer tick-space round simulation.

    All quantities are integer multiples of the caller's tick (one tick
    is ``1/ring_ticks`` of the circumference; time ticks equal position
    ticks because agents move at unit speed).

    Attributes:
        final_coord: Position at the round's end, wrapped to
            ``[0, ring_ticks)``.
        first_collision_tick: Time of the first collision, or ``None``.
        first_collision_coord: Where it happened (wrapped), or ``None``.
        coll_ticks: Ticks travelled before the first collision -- 0 for
            an initially idle agent that is struck, ``None`` if the
            agent never collided.
        collisions: Total number of collisions the agent experienced.
    """

    final_coord: int
    first_collision_tick: Optional[int] = None
    first_collision_coord: Optional[int] = None
    coll_ticks: Optional[int] = None
    collisions: int = 0


def simulate_collisions_ticks(
    coords: Sequence[int],
    velocities: Sequence[int],
    ring_ticks: int,
    duration_ticks: Optional[int] = None,
) -> Tuple[List[TickTrace], int]:
    """Integer-lattice twin of :func:`simulate_collisions`.

    Args:
        coords: Agent positions in clockwise ring order as integer tick
            counts in ``[0, ring_ticks)``.  For every realised *and*
            tentative event time to be integral the caller must put the
            initial coordinates on a grid four times finer than the
            positions' own lattice (see the module docstring); the
            lattice backend passes ``coords = 4 * num`` over
            ``ring_ticks = 4 * D``.
        velocities: Objective velocities in {-1, 0, +1}, same order.
        ring_ticks: Ticks in one full circumference.
        duration_ticks: Round length in ticks; defaults to one full lap
            (``ring_ticks``, i.e. the paper's unit round).

    Returns:
        ``(traces, n_events)`` where ``traces[i]`` describes agent i.
    """
    n = len(coords)
    if n != len(velocities):
        raise SimulationError("positions/velocities length mismatch")
    if any(v not in (-1, 0, 1) for v in velocities):
        raise SimulationError("velocities must be in {-1, 0, +1}")
    if duration_ticks is None:
        duration_ticks = ring_ticks

    # Unwrapped integer coordinates, as in _World: agent i+1's coordinate
    # exceeds agent i's, sidestepping mod-ring_ticks corner cases.
    coord: List[int] = []
    prev = None
    total = 0
    for i, c in enumerate(coords):
        c %= ring_ticks
        if i == 0:
            coord.append(c)
            total = c
        else:
            step = (c - prev) % ring_ticks
            if step == 0:
                raise SimulationError("coincident agent positions")
            total += step
            coord.append(total)
        prev = c
    vel = list(velocities)
    last_t = [0] * n
    traces = [TickTrace(final_coord=0) for _ in range(n)]
    start_moving = [v != 0 for v in velocities]

    def coord_at(i: int, t: int) -> int:
        return coord[i] + vel[i] * (t - last_t[i])

    def advance(i: int, t: int) -> None:
        coord[i] = coord_at(i, t)
        last_t[i] = t

    def pair_event_time(i: int, now: int) -> Optional[int]:
        j = (i + 1) % n
        closing = vel[i] - vel[j]
        if closing <= 0:
            return None
        wrap = ring_ticks if j == 0 else 0
        gap = (coord_at(j, now) + wrap) - coord_at(i, now)
        if gap < 0:
            raise SimulationError("negative gap: ring order violated")
        ticks, rem = divmod(gap, closing)
        if rem:
            raise SimulationError(
                "pair-event time off the tick grid; coordinates must be "
                "pre-scaled to a 4x-finer grid than the position lattice"
            )
        return now + ticks

    version = [0] * n
    heap: List[Tuple[int, int, int]] = []

    def push(i: int, now: int) -> None:
        t = pair_event_time(i, now)
        if t is not None and t <= duration_ticks:
            heapq.heappush(heap, (t, version[i], i))

    for i in range(n):
        push(i, 0)

    guard = 0
    events = 0
    max_events = _event_budget(n, duration_ticks / ring_ticks)
    while heap:
        t, ver, i = heapq.heappop(heap)
        if ver != version[i]:
            continue
        j = (i + 1) % n
        guard += 1
        if guard > max_events:
            raise SimulationError(
                f"collision event budget exceeded: processed {guard} events "
                f"for n={n} agents over {duration_ticks}/{ring_ticks} "
                f"rounds, but at most {max_events} are possible; this "
                "indicates a simulator bug such as a stale-event loop"
            )
        advance(i, t)
        advance(j, t)
        for a in (i, j):
            tr = traces[a]
            tr.collisions += 1
            if tr.first_collision_tick is None:
                tr.first_collision_tick = t
                tr.first_collision_coord = coord[a] % ring_ticks
                tr.coll_ticks = t if start_moving[a] else 0
        vel[i], vel[j] = vel[j], vel[i]
        events += 1
        for p in ((i - 1) % n, i, j):
            version[p] += 1
            push(p, t)

    for a in range(n):
        advance(a, duration_ticks)
        traces[a].final_coord = coord[a] % ring_ticks

    return traces, events
