"""Ground-truth world state of a ring network.

:class:`RingState` holds what an omniscient observer knows: every agent's
exact position, its unique ID, and its private chirality.  Agents never
read this object -- the scheduler mediates all information flow through
:class:`repro.types.Observation` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.geometry import cw_arc, is_ring_ordered, normalize
from repro.types import Chirality


@dataclass
class RingState:
    """Positions, IDs and chiralities of the n agents, in ring order.

    Index ``i`` refers to the i-th agent in the (objective) clockwise
    ring order -- the paper's implicit periodic order a_1 .. a_n, shifted
    to be 0-based.  The ring order never changes because agents cannot
    overpass (collisions only exchange velocities).

    Attributes:
        positions: Current position of each agent, rationals in [0, 1),
            strictly increasing along the clockwise direction.
        ids: The unique identifier of each agent, a value in [1, N].
        chiralities: Each agent's private sense of direction.
        id_bound: The common knowledge bound N with ``N >= n``.
    """

    positions: List[Fraction]
    ids: List[int]
    chiralities: List[Chirality]
    id_bound: int
    initial_positions: Tuple[Fraction, ...] = field(init=False)

    def __post_init__(self) -> None:
        n = len(self.positions)
        if not (len(self.ids) == len(self.chiralities) == n):
            raise ConfigurationError(
                "positions, ids and chiralities must have equal length; got "
                f"{n}, {len(self.ids)}, {len(self.chiralities)}"
            )
        if n <= 4:
            raise ConfigurationError(
                f"the paper assumes n > 4 agents; got n={n}"
            )
        self.positions = [normalize(p) for p in self.positions]
        if not is_ring_ordered(self.positions):
            raise ConfigurationError(
                "positions must be distinct and listed in clockwise ring order"
            )
        if len(set(self.ids)) != n:
            raise ConfigurationError("agent IDs must be unique")
        if any(not (1 <= x <= self.id_bound) for x in self.ids):
            raise ConfigurationError(
                f"agent IDs must lie in [1, N] with N={self.id_bound}"
            )
        if self.id_bound < n:
            raise ConfigurationError(
                f"ID bound N={self.id_bound} must be at least n={n}"
            )
        self.initial_positions = tuple(self.positions)

    @property
    def n(self) -> int:
        """Number of agents on the ring."""
        return len(self.positions)

    @property
    def parity_even(self) -> bool:
        """Whether n is even (the only fact about n agents know a priori)."""
        return self.n % 2 == 0

    def gaps(self) -> List[Fraction]:
        """Current clockwise gaps x_i between agent i and agent i+1.

        The multiset (indeed the cyclic sequence) of gaps is invariant
        under rounds; rounds merely rotate which agent sits before which
        gap (Lemma 1).
        """
        n = self.n
        return [
            cw_arc(self.positions[i], self.positions[(i + 1) % n])
            for i in range(n)
        ]

    def initial_gaps(self) -> List[Fraction]:
        """Clockwise gaps of the *initial* configuration."""
        n = self.n
        return [
            cw_arc(self.initial_positions[i], self.initial_positions[(i + 1) % n])
            for i in range(n)
        ]

    def index_of_id(self, agent_id: int) -> int:
        """Ring index of the agent carrying ``agent_id``."""
        try:
            return self.ids.index(agent_id)
        except ValueError:
            raise ConfigurationError(f"no agent has ID {agent_id}") from None

    def apply_rotation(self, r: int) -> None:
        """Advance every agent by ``r`` ring places clockwise (Lemma 1).

        Agent i moves to the (pre-round) position of agent i+r.  Gaps
        travel with the positions, so the gap sequence seen from a fixed
        agent shifts by r.
        """
        n = self.n
        old = list(self.positions)
        for i in range(n):
            self.positions[i] = old[(i + r) % n]

    def snapshot(self) -> Tuple[Fraction, ...]:
        """Immutable copy of the current positions."""
        return tuple(self.positions)

    def restore(self, snapshot: Sequence[Fraction]) -> None:
        """Reset positions to a previously taken snapshot."""
        if len(snapshot) != self.n:
            raise ConfigurationError("snapshot length mismatch")
        self.positions = [normalize(p) for p in snapshot]
