"""Ground-truth world state of a ring network.

:class:`RingState` holds what an omniscient observer knows: every agent's
exact position, its unique ID, and its private chirality.  Agents never
read this object -- the scheduler mediates all information flow through
:class:`repro.types.Observation` values.

Performance notes
-----------------

``RingState`` caches the clockwise gap array (and its prefix sums) so
that per-round consumers -- the closed-form ``coll()`` cascade and the
kinematics backends -- do not recompute them from positions every round.
The caches are invalidated whenever positions are written, and *rotated*
(O(n) pointer moves, no arithmetic) when a round result is committed:
by Lemma 1 a round only rotates which agent sits before which gap, so
the gap sequence itself merely shifts.

A monotonically increasing :attr:`version` counter is bumped on every
position write.  Kinematics backends (see :mod:`repro.ring.backends`)
snapshot the version after each round they commit and re-derive their
internal representation whenever the version moved underneath them
(e.g. after :meth:`restore` or a manual ``state.positions = ...``).

Positions must be replaced wholesale (``state.positions = [...]``);
mutating individual elements of the returned list bypasses cache
invalidation and is unsupported.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.geometry import cw_arc, is_ring_ordered, normalize
from repro.types import Chirality


class RingState:
    """Positions, IDs and chiralities of the n agents, in ring order.

    Index ``i`` refers to the i-th agent in the (objective) clockwise
    ring order -- the paper's implicit periodic order a_1 .. a_n, shifted
    to be 0-based.  The ring order never changes because agents cannot
    overpass (collisions only exchange velocities).

    Attributes:
        positions: Current position of each agent, rationals in [0, 1),
            strictly increasing along the clockwise direction.
        ids: The unique identifier of each agent, a value in [1, N].
        chiralities: Each agent's private sense of direction.
        id_bound: The common knowledge bound N with ``N >= n``.
        initial_positions: Immutable copy of the starting positions.
        version: Bumped on every position write; lets kinematics
            backends detect external mutation and resynchronise.
    """

    __slots__ = (
        "_positions",
        "_lazy",
        "_n",
        "ids",
        "chiralities",
        "id_bound",
        "initial_positions",
        "version",
        "_gaps",
        "_prefix",
    )

    def __init__(
        self,
        positions: List[Fraction],
        ids: List[int],
        chiralities: List[Chirality],
        id_bound: int,
    ) -> None:
        n = len(positions)
        if not (len(ids) == len(chiralities) == n):
            raise ConfigurationError(
                "positions, ids and chiralities must have equal length; got "
                f"{n}, {len(ids)}, {len(chiralities)}"
            )
        if n <= 4:
            raise ConfigurationError(
                f"the paper assumes n > 4 agents; got n={n}"
            )
        self._positions = [normalize(p) for p in positions]
        if not is_ring_ordered(self._positions):
            raise ConfigurationError(
                "positions must be distinct and listed in clockwise ring order"
            )
        if len(set(ids)) != n:
            raise ConfigurationError("agent IDs must be unique")
        if any(not (1 <= x <= id_bound) for x in ids):
            raise ConfigurationError(
                f"agent IDs must lie in [1, N] with N={id_bound}"
            )
        if id_bound < n:
            raise ConfigurationError(
                f"ID bound N={id_bound} must be at least n={n}"
            )
        self.ids = list(ids)
        self.chiralities = list(chiralities)
        self.id_bound = id_bound
        self.initial_positions = tuple(self._positions)
        self.version = 0
        self._n = n
        self._lazy = None
        self._gaps: Optional[List[Fraction]] = None
        self._prefix: Optional[List[Fraction]] = None

    def _pos(self) -> List[Fraction]:
        """The live position list, materialising a lazy commit.

        After a fused stretch (see :meth:`commit_stretch`) the position
        list is a pending thunk; any read -- internal or external --
        builds it exactly once.  Materialisation is a read, so it does
        not bump :attr:`version`.
        """
        positions = self._positions
        if positions is None:
            positions = self._positions = self._lazy()
            self._lazy = None
        return positions

    @property
    def positions(self) -> List[Fraction]:
        """Current positions, in ring order.

        Returns a copy: in-place element writes would bypass cache
        invalidation (and backend resynchronisation) silently.  Replace
        wholesale (``state.positions = [...]``) to write.
        """
        return list(self._pos())

    @positions.setter
    def positions(self, value: Sequence[Fraction]) -> None:
        self._positions = [normalize(p) for p in value]
        self._invalidate()

    def _invalidate(self) -> None:
        self._lazy = None
        self._gaps = None
        self._prefix = None
        self.version += 1

    @property
    def n(self) -> int:
        """Number of agents on the ring."""
        return self._n

    @property
    def parity_even(self) -> bool:
        """Whether n is even (the only fact about n agents know a priori)."""
        return self.n % 2 == 0

    def _gaps_cached(self) -> List[Fraction]:
        """The cached clockwise gap array itself (callers must not mutate)."""
        if self._gaps is None:
            n = self.n
            pos = self._pos()
            self._gaps = [
                cw_arc(pos[i], pos[(i + 1) % n]) for i in range(n)
            ]
        return self._gaps

    def gaps(self) -> List[Fraction]:
        """Current clockwise gaps x_i between agent i and agent i+1.

        The multiset (indeed the cyclic sequence) of gaps is invariant
        under rounds; rounds merely rotate which agent sits before which
        gap (Lemma 1).  The array is cached between rounds.
        """
        return list(self._gaps_cached())

    def _prefix_cached(self) -> List[Fraction]:
        """The cached prefix-sum array itself (callers must not mutate)."""
        if self._prefix is None:
            gaps = self._gaps_cached()
            prefix = [Fraction(0)] * (len(gaps) + 1)
            for i, g in enumerate(gaps):
                prefix[i + 1] = prefix[i] + g
            self._prefix = prefix
        return self._prefix

    def gap_prefix(self) -> List[Fraction]:
        """Cached prefix sums of the gap array: ``prefix[i]`` is the
        clockwise arc from agent 0 to agent i; ``prefix[n] == 1``.
        Returns a copy (the cache itself must not be mutated)."""
        return list(self._prefix_cached())

    def initial_gaps(self) -> List[Fraction]:
        """Clockwise gaps of the *initial* configuration."""
        n = self.n
        return [
            cw_arc(self.initial_positions[i], self.initial_positions[(i + 1) % n])
            for i in range(n)
        ]

    def index_of_id(self, agent_id: int) -> int:
        """Ring index of the agent carrying ``agent_id``."""
        try:
            return self.ids.index(agent_id)
        except ValueError:
            raise ConfigurationError(f"no agent has ID {agent_id}") from None

    def apply_rotation(self, r: int) -> None:
        """Advance every agent by ``r`` ring places clockwise (Lemma 1).

        Agent i moves to the (pre-round) position of agent i+r.  Gaps
        travel with the positions, so the gap sequence seen from a fixed
        agent shifts by r.
        """
        n = self.n
        old = self._pos()
        self.commit_round([old[(i + r) % n] for i in range(n)], r)

    def commit_round(self, final: Sequence[Fraction], r: int) -> None:
        """Fast-path position write used by kinematics backends.

        ``final`` must be a freshly built list of the post-round
        positions (already canonical representatives in [0, 1), already
        ring ordered; ownership transfers to the state) and ``r`` the
        round's rotation index.  The gap cache is rotated rather than
        invalidated; the prefix cache cannot be rotated and is dropped.
        """
        self._positions = final if isinstance(final, list) else list(final)
        self._lazy = None
        gaps = self._gaps
        if gaps is not None and r:
            n = len(gaps)
            self._gaps = [gaps[(i + r) % n] for i in range(n)]
        self._prefix = None
        self.version += 1

    def commit_stretch(self, materialise, rounds: int, r_total: int) -> None:
        """Lazy position write used by fused-stretch backends.

        ``materialise`` builds the post-span position list (canonical,
        ring-ordered) on demand; nothing is allocated until something
        actually reads :attr:`positions` -- restore spans typically end
        where they began and are never read.  ``rounds`` spans were
        executed with cumulative rotation ``r_total``; the version
        counter advances by ``rounds`` so that per-round observers stay
        monotonic, and the gap cache rotates by the cumulative rotation
        exactly as ``rounds`` individual commits would have rotated it.
        """
        self._positions = None
        self._lazy = materialise
        gaps = self._gaps
        r = r_total % self._n
        if gaps is not None and r:
            n = len(gaps)
            self._gaps = [gaps[(i + r) % n] for i in range(n)]
        self._prefix = None
        self.version += rounds

    def snapshot(self) -> Tuple[Fraction, ...]:
        """Immutable copy of the current positions."""
        return tuple(self._pos())

    def restore(self, snapshot: Sequence[Fraction]) -> None:
        """Reset positions to a previously taken snapshot."""
        if len(snapshot) != self.n:
            raise ConfigurationError("snapshot length mismatch")
        self.positions = list(snapshot)
