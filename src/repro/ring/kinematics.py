"""Closed-form round kinematics (Lemma 1 of the paper).

When two equal-speed agents collide they exchange velocities, which is
indistinguishable from the agents passing through each other with
relabelling ("beads on a ring").  Consequently the *set* of end
positions of a round equals the set of straight-line token end
positions, and each agent ends at the initial position of the agent
``r`` ring places clockwise from it, where ``r = (nC - nA) mod n`` is
the round's rotation index (Lemma 1).

This module computes final positions and ``dist()`` observations in
O(n) without simulating any collisions.  The event-driven simulator in
:mod:`repro.ring.collisions` computes the same quantities the hard way;
property tests assert they agree.

The functions here are backend-neutral: they operate on whatever
number type the caller supplies (``Fraction`` positions in the exact
backend, plain ``int`` lattice coordinates in the integer backend --
see :mod:`repro.ring.backends`).  ``first_collisions_basic`` accepts
precomputed gap/prefix arrays so callers holding a cache (e.g.
:meth:`repro.ring.state.RingState.gaps`) avoid the O(n) recomputation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.geometry import cw_arc


def rotation_index(velocities: Sequence[int], n: int) -> int:
    """Rotation index r = (nC - nA) mod n of a round.

    ``velocities`` are objective per-agent velocities in {-1, 0, +1}
    (idle agents contribute to neither count -- the beads argument is
    unaffected by idle agents because collisions still only exchange
    velocities).
    """
    n_cw = sum(1 for v in velocities if v > 0)
    n_acw = sum(1 for v in velocities if v < 0)
    return (n_cw - n_acw) % n


def closed_form_round(
    positions: Sequence[Fraction], velocities: Sequence[int]
) -> Tuple[List[Fraction], int]:
    """Final positions after one unit-time round, plus the rotation index.

    Agent i's final position is the initial position of agent
    ``(i + r) mod n``.  Positions stay in ring order (agent order is
    preserved on the circle; only the labels rotate relative to the
    position multiset).
    """
    n = len(positions)
    r = rotation_index(velocities, n)
    final = [positions[(i + r) % n] for i in range(n)]
    return final, r


def hops_to_opposite(velocities: Sequence[int]) -> List[int]:
    """Ring distance from each agent to the nearest opposite mover ahead.

    ``hops[i]`` is the number of ring places from agent i to the nearest
    agent moving against it, measured in agent i's direction of travel
    (clockwise for +1 movers, anticlockwise for -1 movers).  Found with
    one scan over the doubled ring in each direction.  Velocities must
    be mixed and idle-free; entries are in [1, n-1].

    The result depends only on the velocity pattern, never on positions,
    so per-pattern callers (the batched round executor) can cache it.
    """
    n = len(velocities)
    hops = [0] * n
    last: Optional[int] = None
    for idx in range(2 * n - 1, -1, -1):
        i = idx % n
        if velocities[i] < 0:
            last = idx
        elif last is not None and idx < n:
            hops[i] = last - idx
    last = None
    for idx in range(2 * n):
        i = idx % n
        if velocities[i] > 0:
            last = idx
        elif last is not None and idx >= n:
            hops[i] = idx - last
    return hops


def first_collisions_basic(
    positions: Sequence[Fraction],
    velocities: Sequence[int],
    gaps: Optional[Sequence[Fraction]] = None,
    prefix: Optional[Sequence[Fraction]] = None,
) -> List[Optional[Fraction]]:
    """Closed-form ``coll()`` for rounds in which every agent moves.

    For a clockwise-moving agent, the first collision always comes from
    ahead (an equal-speed chaser can never catch it before it first
    reverses): the nearest anticlockwise-moving agent ahead defines a
    converging boundary, the boundary pair meets at half its gap, and
    the reflection cascades back through the intervening same-direction
    chain one half-gap at a time.  The agent's first collision therefore
    happens after it has travelled exactly half the arc to that nearest
    opposite mover.  Mirror-symmetric for anticlockwise movers.  Agents
    never collide when everyone moves the same way.

    This is the general form of the paper's Proposition 4 (with the
    nearest gap included in the sum, consistent with Proposition 37) and
    is cross-validated against the event-driven simulator in tests.

    Args:
        positions: Ring-ordered positions.
        velocities: Objective velocities, all in {-1, +1} (no idles --
            idle agents break the cascade argument; use the event
            simulator for lazy rounds).
        gaps: Optional precomputed clockwise gap array (as produced by
            :meth:`repro.ring.state.RingState.gaps`); computed from
            ``positions`` when omitted.
        prefix: Optional precomputed prefix sums of ``gaps`` with
            ``prefix[0] == 0`` and ``prefix[n]`` the full circumference.

    Returns:
        Per-agent first-collision arcs, or all None when the round is
        collision-free.
    """
    n = len(positions)
    if any(v == 0 for v in velocities):
        raise ValueError("first_collisions_basic requires a basic round")
    if len(set(velocities)) == 1:
        return [None] * n
    if gaps is None:
        gaps = [
            cw_arc(positions[i], positions[(i + 1) % n]) for i in range(n)
        ]
    if prefix is None:
        # prefix[i] = arc from agent 0 to agent i walking clockwise.
        acc = [Fraction(0)] * (n + 1)
        for i in range(n):
            acc[i + 1] = acc[i] + gaps[i]
        prefix = acc

    full = prefix[n]

    def arc_forward(i: int, hops: int) -> Fraction:
        j = i + hops
        if j < n:
            return prefix[j] - prefix[i]
        return full - prefix[i] + prefix[j - n]

    hops_ahead = hops_to_opposite(velocities)

    result: List[Optional[Fraction]] = [None] * n
    for i in range(n):
        hops = hops_ahead[i]
        if velocities[i] > 0:
            result[i] = arc_forward(i, hops) / 2
        else:
            result[i] = arc_forward((i - hops) % n, hops) / 2
    return result


def objective_displacements(
    positions: Sequence[Fraction], r: int
) -> List[Fraction]:
    """Clockwise arc travelled *net* by each agent in a rotation-r round.

    Agent i's net displacement is the clockwise arc from its start
    position to the start position of agent i+r.  Note that for rounds
    with r counted "the long way" the physical trajectory differs from
    this chord, but end-of-round ``dist()`` only exposes the net arc.
    """
    n = len(positions)
    return [cw_arc(positions[i], positions[(i + r) % n]) for i in range(n)]
