"""The bouncing-agent ring world: state, kinematics, exact simulation."""

from repro.ring.state import RingState
from repro.ring.kinematics import rotation_index, closed_form_round
from repro.ring.collisions import simulate_collisions, AgentTrace, position_at
from repro.ring.simulator import RingSimulator
from repro.ring.configs import (
    random_configuration,
    jittered_equidistant_configuration,
    clustered_configuration,
)

__all__ = [
    "RingState",
    "rotation_index",
    "closed_form_round",
    "simulate_collisions",
    "AgentTrace",
    "position_at",
    "RingSimulator",
    "random_configuration",
    "jittered_equidistant_configuration",
    "clustered_configuration",
]
