"""The bouncing-agent ring world: state, kinematics, exact simulation.

Round arithmetic is pluggable (see :mod:`repro.ring.backends`): the
``lattice`` backend runs each round in integer arithmetic over one
shared denominator, the ``fraction`` backend is the exact-rational
reference, and the ``array`` backend adds whole-column fused-stretch
execution for large rings (numpy when available, stdlib ``array``
otherwise); all three produce bit-identical outcomes.
"""

from repro.ring.state import RingState
from repro.ring.kinematics import (
    rotation_index,
    closed_form_round,
    first_collisions_basic,
    hops_to_opposite,
)
from repro.ring.collisions import (
    simulate_collisions,
    simulate_collisions_ticks,
    AgentTrace,
    TickTrace,
    position_at,
)
from repro.ring.backends import (
    ArrayBackend,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    FractionBackend,
    KinematicsBackend,
    LatticeBackend,
    make_backend,
)
from repro.ring.stretch import MaterialisedStretch, Stretch
from repro.ring.simulator import RingSimulator
from repro.ring.configs import (
    random_configuration,
    jittered_equidistant_configuration,
    clustered_configuration,
)

__all__ = [
    "RingState",
    "rotation_index",
    "closed_form_round",
    "first_collisions_basic",
    "hops_to_opposite",
    "simulate_collisions",
    "simulate_collisions_ticks",
    "AgentTrace",
    "TickTrace",
    "position_at",
    "ArrayBackend",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "KinematicsBackend",
    "FractionBackend",
    "LatticeBackend",
    "MaterialisedStretch",
    "Stretch",
    "make_backend",
    "RingSimulator",
    "random_configuration",
    "jittered_equidistant_configuration",
    "clustered_configuration",
]
