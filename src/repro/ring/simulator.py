"""Round execution: from local direction choices to agent observations.

:class:`RingSimulator` is the bridge between the world model and the
agents.  Given each agent's *local* direction choice it:

1. maps choices to objective velocities through each agent's private
   chirality;
2. enforces the model variant (idling is only legal in the lazy model);
3. computes the round outcome -- by closed form (Lemma 1) when no
   collision information is needed, or by exact event simulation when
   the model is perceptive (or when cross-validation is enabled);
4. updates the world state and returns per-agent
   :class:`~repro.types.Observation` values expressed in each agent's
   own frame.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.exceptions import ModelViolationError, SimulationError
from repro.geometry import cw_arc, ccw_arc
from repro.ring.collisions import simulate_collisions
from repro.ring.kinematics import (
    closed_form_round,
    first_collisions_basic,
    rotation_index,
)
from repro.ring.state import RingState
from repro.types import (
    Chirality,
    LocalDirection,
    Model,
    Observation,
    RoundOutcome,
    local_to_velocity,
)


class RingSimulator:
    """Executes rounds against a :class:`RingState` under a model variant.

    Attributes:
        state: The ground-truth world state (mutated by each round).
        model: Which model variant's rules and observations apply.
        cross_validate: When True, every round is computed both ways and
            the closed-form and event-driven results are asserted equal.
            Slower; intended for tests.
        rounds_executed: Number of rounds run so far (the paper's cost
            measure).
    """

    def __init__(
        self,
        state: RingState,
        model: Model = Model.BASIC,
        cross_validate: bool = False,
    ) -> None:
        self.state = state
        self.model = model
        self.cross_validate = cross_validate
        self.rounds_executed = 0
        self.collision_events = 0

    def execute(self, directions: Sequence[LocalDirection]) -> RoundOutcome:
        """Run one round with the given per-agent local directions.

        Args:
            directions: ``directions[i]`` is the choice of the agent at
                ring index i, in that agent's own frame.

        Returns:
            The omniscient :class:`RoundOutcome`; the scheduler forwards
            ``outcome.observations[i]`` to agent i only.

        Raises:
            ModelViolationError: If an agent idles outside the lazy model.
        """
        n = self.state.n
        if len(directions) != n:
            raise SimulationError("one direction per agent is required")
        if not self.model.allows_idle:
            if any(d is LocalDirection.IDLE for d in directions):
                raise ModelViolationError(
                    f"idle is not permitted in the {self.model.value} model"
                )

        velocities = [
            local_to_velocity(directions[i], self.state.chiralities[i])
            for i in range(n)
        ]
        start = list(self.state.positions)
        r = rotation_index(velocities, n)

        has_idle = any(v == 0 for v in velocities)
        need_events = self.cross_validate or (
            self.model.reports_collisions and has_idle
        )
        coll: List[Optional[Fraction]] = [None] * n
        events = 0
        if self.model.reports_collisions and not has_idle:
            coll = first_collisions_basic(start, velocities)
        if need_events:
            traces, events = simulate_collisions(start, velocities)
            final_event = [tr.final_position for tr in traces]
            if self.model.reports_collisions:
                coll_event = [tr.coll_distance for tr in traces]
                if not has_idle and coll_event != coll:
                    raise SimulationError(
                        "closed-form and event-driven first collisions "
                        f"disagree: closed={coll} event={coll_event}"
                    )
                coll = coll_event

        final_closed, _ = closed_form_round(start, velocities)
        if need_events and final_event != final_closed:
            raise SimulationError(
                "closed-form and event-driven final positions disagree "
                f"(rotation index {r}); closed={final_closed} "
                f"event={final_event}"
            )

        observations = tuple(
            Observation(
                dist=self._dist_in_frame(start[i], final_closed[i],
                                         self.state.chiralities[i]),
                coll=coll[i],
            )
            for i in range(n)
        )

        self.state.positions = final_closed
        self.rounds_executed += 1
        self.collision_events += events
        return RoundOutcome(
            observations=observations, rotation_index=r, collision_events=events
        )

    @staticmethod
    def _dist_in_frame(
        start: Fraction, end: Fraction, chirality: Chirality
    ) -> Fraction:
        """The paper's ``dist()``: start-to-end arc in the agent's own
        clockwise direction."""
        if chirality is Chirality.CLOCKWISE:
            return cw_arc(start, end)
        return ccw_arc(start, end)

    def execute_objective(self, velocities: Sequence[int]) -> RoundOutcome:
        """Run one round from objective velocities (testing/tooling hook).

        Bypasses chirality mapping; still enforces the idle rule.
        """
        n = self.state.n
        dirs: List[LocalDirection] = []
        for i in range(n):
            v = velocities[i]
            if v == 0:
                dirs.append(LocalDirection.IDLE)
            else:
                local_cw = v * int(self.state.chiralities[i])
                dirs.append(
                    LocalDirection.RIGHT if local_cw > 0 else LocalDirection.LEFT
                )
        return self.execute(dirs)
