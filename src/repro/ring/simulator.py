"""Round execution: from local direction choices to agent observations.

:class:`RingSimulator` is the bridge between the world model and the
agents.  Given each agent's *local* direction choice it:

1. maps choices to objective velocities through each agent's private
   chirality;
2. enforces the model variant (idling is only legal in the lazy model);
3. delegates the round's arithmetic to a pluggable *kinematics backend*
   (see :mod:`repro.ring.backends`): the closed form (Lemma 1) when no
   collision information is needed, exact event simulation when the
   round requires it (or when cross-validation is enabled);
4. returns per-agent :class:`~repro.types.Observation` values expressed
   in each agent's own frame (the backend commits the world state).

Backend selection: pass ``backend="lattice"`` (default, integer
arithmetic over one shared denominator) or ``backend="fraction"``
(reference exact-rational implementation), or a ready
:class:`~repro.ring.backends.KinematicsBackend` instance.  The two are
property-tested to produce bit-identical outcomes.

Batched execution: :meth:`execute_batch` runs ``k`` rounds with a fixed
direction vector, validating the model rules and mapping chiralities
once instead of per round; the lattice backend's memoised
velocity-pattern tables make each subsequent round pure table lookups.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import ModelViolationError, SimulationError
from repro.ring.backends import BackendSpec, make_backend
from repro.ring.state import RingState
from repro.ring.stretch import (
    MaterialisedStretch,
    SpeculativeStretch,
    Stretch,
    row_directions,
    row_is_signs,
)
from repro.types import LocalDirection, Model, RoundOutcome


class RingSimulator:
    """Executes rounds against a :class:`RingState` under a model variant.

    Attributes:
        state: The ground-truth world state (mutated by each round).
        model: Which model variant's rules and observations apply.
        backend: The kinematics backend executing the arithmetic.
        cross_validate: When True, every round is computed both ways and
            the closed-form and event-driven results are asserted equal.
            Slower; intended for tests.
        rounds_executed: Number of rounds run so far (the paper's cost
            measure).
        collision_events: Total collision events processed by the event
            engine (0 for rounds resolved in closed form).
    """

    def __init__(
        self,
        state: RingState,
        model: Model = Model.BASIC,
        cross_validate: bool = False,
        backend: BackendSpec = None,
    ) -> None:
        self.state = state
        self.model = model
        self.cross_validate = cross_validate
        self.backend = make_backend(backend)
        self.backend.attach(state)
        self.rounds_executed = 0
        self.collision_events = 0
        # Agent slots exempt from the must-move check: crash-stopped
        # agents idle by force, not by protocol choice, so the fault
        # layer (repro.faults) marks them here before injecting IDLE
        # into basic/perceptive runs.
        self.idle_exempt: frozenset = frozenset()
        # Per-agent objective velocity for each local choice (chirality
        # never changes); identity checks on the three enum members are
        # much cheaper than hashing direction vectors.
        self._vel_right = [int(c) for c in state.chiralities]
        self._vel_left = [-v for v in self._vel_right]
        self._vel_right_arr = None  # int8 ndarray mirror, built on demand

    def _velocities(
        self, directions: Sequence[LocalDirection]
    ) -> Sequence[int]:
        """Validate a direction vector and map it to objective velocities.

        Equivalent to mapping :func:`repro.types.local_to_velocity` over
        the agents.
        """
        n = self.state.n
        if len(directions) != n:
            raise SimulationError("one direction per agent is required")
        right, left = LocalDirection.RIGHT, LocalDirection.LEFT
        vel_right, vel_left = self._vel_right, self._vel_left
        allows_idle = self.model.allows_idle
        velocities = [0] * n
        for i, d in enumerate(directions):
            if d is right:
                velocities[i] = vel_right[i]
            elif d is left:
                velocities[i] = vel_left[i]
            elif not allows_idle and i not in self.idle_exempt:
                raise ModelViolationError(
                    f"idle is not permitted in the {self.model.value} model"
                )
        return tuple(velocities)

    def execute(self, directions: Sequence[LocalDirection]) -> RoundOutcome:
        """Run one round with the given per-agent local directions.

        Args:
            directions: ``directions[i]`` is the choice of the agent at
                ring index i, in that agent's own frame.

        Returns:
            The omniscient :class:`RoundOutcome`; the scheduler forwards
            ``outcome.observations[i]`` to agent i only.

        Raises:
            ModelViolationError: If an agent idles outside the lazy model.
        """
        velocities = self._velocities(directions)
        outcome = self.backend.execute_round(
            velocities,
            need_coll=self.model.reports_collisions,
            cross_validate=self.cross_validate,
        )
        self.rounds_executed += 1
        self.collision_events += outcome.collision_events
        return outcome

    def execute_batch(
        self, directions: Sequence[LocalDirection], k: int
    ) -> List[RoundOutcome]:
        """Run ``k`` rounds with the same direction vector each round.

        Model rules are checked and chiralities mapped once for the
        whole batch; each round then reuses the backend's memoised
        velocity-pattern derivations.  Returns all ``k`` outcomes in
        order.
        """
        if k < 0:
            raise SimulationError("cannot execute a negative round count")
        velocities = self._velocities(directions)
        need_coll = self.model.reports_collisions
        cross_validate = self.cross_validate
        backend = self.backend
        outcomes: List[RoundOutcome] = []
        for _ in range(k):
            outcome = backend.execute_round(
                velocities, need_coll=need_coll, cross_validate=cross_validate
            )
            self.collision_events += outcome.collision_events
            outcomes.append(outcome)
        self.rounds_executed += k
        return outcomes

    def _velocities_row(self, row):
        """Map one stretch row to objective velocities.

        Direction rows go through :meth:`_velocities`; local-frame sign
        rows (vectorised policies) are validated and multiplied by the
        chirality sign vector -- one numpy multiply, no per-agent
        dispatch.
        """
        if not row_is_signs(row):
            return self._velocities(row)
        n = self.state.n
        if len(row) != n:
            raise SimulationError("one direction per agent is required")
        from repro.ring.arrayops import get_numpy

        np = get_numpy()
        if np is not None:
            signs = np.ascontiguousarray(row, dtype=np.int8)
            if bool(((signs < -1) | (signs > 1)).any()):
                raise SimulationError(
                    "stretch sign rows must hold only -1, 0 or +1"
                )
            if not self.model.allows_idle and bool((signs == 0).any()):
                raise ModelViolationError(
                    f"idle is not permitted in the {self.model.value} model"
                )
            if self._vel_right_arr is None:
                self._vel_right_arr = np.asarray(
                    self._vel_right, dtype=np.int8
                )
            return signs * self._vel_right_arr
        allows_idle = self.model.allows_idle
        vel_right = self._vel_right
        velocities = [0] * n
        for i, s in enumerate(row):
            if s:
                if s not in (1, -1):
                    raise SimulationError(
                        "stretch sign rows must hold only -1, 0 or +1"
                    )
                velocities[i] = s * vel_right[i]
            elif not allows_idle:
                raise ModelViolationError(
                    f"idle is not permitted in the {self.model.value} model"
                )
        return tuple(velocities)

    def execute_stretch(self, stretch: Stretch):
        """Run a whole fused stretch (see :mod:`repro.ring.stretch`).

        Hands the span to the backend in one call when it supports
        fused execution (and cross-validation is off); otherwise -- and
        whenever the backend declines the span -- executes it round by
        round through :meth:`execute`.  Either way the stretch's
        executed rounds count toward :attr:`rounds_executed` and the
        returned object exposes the stretch-outcome surface.

        A :class:`~repro.ring.stretch.SpeculativeStretch` routes
        through the backend's speculative path: the plan is an upper
        bound and the stop predicate decides the committed length.  On
        scalar execution the predicate is evaluated after each round
        (the legacy observe-then-decide loop); either way it is called
        once per executed round, in order.
        """
        if stretch.rounds < 1:
            raise SimulationError("a stretch must span at least one round")
        stop = (
            stretch.stop
            if isinstance(stretch, SpeculativeStretch)
            else None
        )
        backend = self.backend
        if (
            getattr(backend, "supports_stretch", False)
            and not self.cross_validate
        ):
            pairs = [
                (self._velocities_row(row), count)
                for row, count in stretch.pairs
            ]
            need_coll = self.model.reports_collisions
            if isinstance(stretch, SpeculativeStretch):
                result = backend.execute_speculative(
                    pairs, stop, need_coll=need_coll
                )
            else:
                result = backend.execute_stretch(pairs, need_coll=need_coll)
            if result is not None:
                self.rounds_executed += result.k
                return result
        outcomes = MaterialisedStretch()
        j = 0
        for row, count in stretch.pairs:
            directions = row_directions(row)
            for _ in range(count):
                outcomes.append(self.execute(directions))
                if stop is not None and stop(outcomes, j):
                    return outcomes
                j += 1
        return outcomes

    def apply_restoring_span(self, row, k: int = 1) -> None:
        """Apply a provably-restoring span's net rotation, unsimulated.

        The ``unchecked`` fast path: a span of ``k`` rounds of ``row``
        whose observations are never read (the trailing REVERSEDROUNDs
        of probe/restore pairs) affects the world only through its net
        rotation (Lemma 1), so the backend commits that rotation
        directly -- no collision resolution, no observations, and the
        skipped rounds do **not** count toward
        :attr:`rounds_executed`.  Callers own the proof that the span
        really restores (the scheduler only routes restore steps here).
        """
        velocities = self._velocities_row(row)
        if isinstance(velocities, tuple):
            pos = velocities.count(1)
            neg = velocities.count(-1)
        else:  # int8 ndarray from a sign row
            pos = int((velocities > 0).sum())
            neg = int((velocities < 0).sum())
        r = ((pos - neg) * k) % self.state.n
        self.backend.commit_rotation(r)

    def execute_objective(self, velocities: Sequence[int]) -> RoundOutcome:
        """Run one round from objective velocities (testing/tooling hook).

        Bypasses chirality mapping; still enforces the idle rule.
        """
        n = self.state.n
        dirs: List[LocalDirection] = []
        for i in range(n):
            v = velocities[i]
            if v == 0:
                dirs.append(LocalDirection.IDLE)
            else:
                local_cw = v * int(self.state.chiralities[i])
                dirs.append(
                    LocalDirection.RIGHT if local_cw > 0 else LocalDirection.LEFT
                )
        return self.execute(dirs)
