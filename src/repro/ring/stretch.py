"""Fused-stretch execution plans and their round-by-round fallback.

A :class:`Stretch` is a *plan* for several consecutive rounds whose
direction vectors are all known up front -- the paper's ubiquitous
probe/REVERSEDROUND pairs, the four rounds of a collision-channel bit
exchange, a ``run_fixed`` batch.  A whole-population policy may return
one from ``decide`` instead of a single direction vector; the scheduler
then hands the whole span to the kinematics backend in one call.  A
backend that understands stretches (:class:`~repro.ring.backends.
ArrayBackend`) advances all ``k`` rounds in closed form and returns a
*stretch outcome* whose observations stay columnar -- per-agent
:class:`~repro.types.Observation` objects are only materialised if
something actually reads them (restore rounds typically never are).

Every stretch outcome exposes the same duck-typed surface:

* ``k``, ``n``, ``rotations`` (per-round rotation indices),
  ``collision_events``, ``scale`` (shared denominator, or None),
  ``np`` (the numpy module when raw integer columns are available
  through it, else None);
* ``observations(j)`` / ``outcome(j)`` -- materialised round views;
* ``dists(j)`` / ``colls(j)`` -- per-round observation columns as
  interned Fractions;
* ``dist_ints(j)`` / ``coll_ints(j)`` -- raw integer numerator columns
  (over ``scale`` and ``2 * scale`` respectively; ``-1`` encodes a
  ``coll() = None``), or None when the span was executed round by
  round.

:class:`MaterialisedStretch` is the fallback implementation wrapping
plain :class:`~repro.types.RoundOutcome` values, used whenever the
backend executes the span one round at a time (Fraction and lattice
backends, cross-validated runs).

Rows of a stretch may be given either as ``LocalDirection`` sequences
or as local-frame *sign rows* (+1 = own RIGHT, -1 = own LEFT, 0 =
idle) -- numpy int8 arrays from vectorised policies, any int sequence
otherwise.  Signs are in each agent's own frame; chirality mapping
stays inside the simulator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.types import LocalDirection, Observation, RoundOutcome

Row = Sequence  # LocalDirection sequence or local-sign int sequence


def row_is_signs(row: Row) -> bool:
    """Whether ``row`` is a sign row (ints) rather than directions."""
    if len(row) == 0:
        return False
    first = row[0]
    return not isinstance(first, LocalDirection)


def row_directions(row: Row) -> List[LocalDirection]:
    """``row`` as a LocalDirection list (identity for direction rows)."""
    if row_is_signs(row):
        from repro.ring.arrayops import signs_to_directions

        return signs_to_directions(row)
    return list(row)


def opposite_row(row: Row) -> Row:
    """The REVERSEDROUND of ``row``, in the row's own representation."""
    if row_is_signs(row):
        try:
            return -row  # numpy fast path
        except TypeError:
            return [-s for s in row]
    return [d.opposite() for d in row]


class Stretch:
    """A plan of ``rounds`` consecutive rounds with known vectors.

    ``Stretch(row, k)`` plays one row ``k`` times; :meth:`of` builds a
    heterogeneous span; ``pairs`` is the internal run-length form
    ``[(row, count), ...]`` consumed by the simulator.
    """

    __slots__ = ("pairs", "rounds")

    def __init__(self, row: Optional[Row] = None, k: int = 1,
                 pairs: Optional[List[Tuple[Row, int]]] = None) -> None:
        if pairs is None:
            if row is None:
                raise ValueError("Stretch needs a row or explicit pairs")
            pairs = [(row, k)]
        self.pairs: List[Tuple[Row, int]] = []
        total = 0
        for r, count in pairs:
            if count < 1:
                raise ValueError("stretch round counts must be >= 1")
            self.pairs.append((r, count))
            total += count
        if total < 1:
            raise ValueError("a stretch must span at least one round")
        self.rounds = total

    @classmethod
    def of(cls, rows: Sequence[Row]) -> "Stretch":
        """A span playing each row of ``rows`` once, in order."""
        return cls(pairs=[(row, 1) for row in rows])

    @classmethod
    def probe_restore(cls, row: Row) -> "Stretch":
        """The probe/REVERSEDROUND pair of ``row`` (2 rounds)."""
        return cls(pairs=[(row, 1), (opposite_row(row), 1)])

    @property
    def last_row(self) -> Row:
        """The final round's row (the REPEAT/RESTORE base afterwards)."""
        return self.pairs[-1][0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stretch rounds={self.rounds} spans={len(self.pairs)}>"


class MaterialisedStretch:
    """Stretch outcome assembled from per-round outcomes (fallback)."""

    __slots__ = ("_outcomes", "k", "n", "rotations", "collision_events")

    #: No raw integer columns on this implementation.
    np = None
    scale: Optional[int] = None

    def __init__(self, outcomes: Sequence[RoundOutcome]) -> None:
        self._outcomes = list(outcomes)
        self.k = len(self._outcomes)
        self.n = len(self._outcomes[0].observations) if self.k else 0
        self.rotations = [o.rotation_index for o in self._outcomes]
        self.collision_events = sum(
            o.collision_events for o in self._outcomes
        )

    def outcome(self, j: int) -> RoundOutcome:
        return self._outcomes[j]

    def observations(self, j: int) -> Tuple[Observation, ...]:
        return self._outcomes[j].observations

    def dists(self, j: int) -> List:
        return [o.dist for o in self._outcomes[j].observations]

    def colls(self, j: int) -> List:
        return [o.coll for o in self._outcomes[j].observations]

    def dist_ints(self, j: int):
        return None

    def coll_ints(self, j: int):
        return None
