"""Fused-stretch execution plans and their round-by-round fallback.

A :class:`Stretch` is a *plan* for several consecutive rounds whose
direction vectors are all known up front -- the paper's ubiquitous
probe/REVERSEDROUND pairs, the four rounds of a collision-channel bit
exchange, a ``run_fixed`` batch.  A whole-population policy may return
one from ``decide`` instead of a single direction vector; the scheduler
then hands the whole span to the kinematics backend in one call.  A
backend that understands stretches (:class:`~repro.ring.backends.
ArrayBackend`) advances all ``k`` rounds in closed form and returns a
*stretch outcome* whose observations stay columnar -- per-agent
:class:`~repro.types.Observation` objects are only materialised if
something actually reads them (restore rounds typically never are).

Every stretch outcome exposes the same duck-typed surface:

* ``k``, ``n``, ``rotations`` (per-round rotation indices),
  ``collision_events``, ``scale`` (shared denominator, or None),
  ``np`` (the numpy module when raw integer columns are available
  through it, else None);
* ``observations(j)`` / ``outcome(j)`` -- materialised round views;
* ``dists(j)`` / ``colls(j)`` -- per-round observation columns as
  interned Fractions;
* ``dist_ints(j)`` / ``coll_ints(j)`` -- raw integer numerator columns
  (over ``scale`` and ``2 * scale`` respectively; ``-1`` encodes a
  ``coll() = None``), or None when the span was executed round by
  round;
* ``dist_ints_all()`` -- the whole span's dist numerators as one
  ``(k, n)`` matrix when the vectorised representation has one, else
  None (columnar harvests branch on it).

:class:`MaterialisedStretch` is the fallback implementation wrapping
plain :class:`~repro.types.RoundOutcome` values, used whenever the
backend executes the span one round at a time (Fraction and lattice
backends, cross-validated runs).

Speculative spans
-----------------

A :class:`SpeculativeStretch` extends the plan with a per-round *stop
predicate* for the paper's data-dependent phases (the location
discovery sweeps that close when an agent has seen a full turn of
gaps, the Convolution/Pivot schedule that ends when every equation
system reaches full rank).  The planned span is an optimistic upper
bound: a stretch-capable backend advances the whole span vectorised,
then evaluates the predicate against the emitted observation columns
round by round and **cuts the span short at the first firing round**
-- committed state rolls back to that boundary, which under lazy
position commits is a rotation-offset rewind, not a copy.  Scalar
backends interleave instead: execute one round, evaluate, stop --
exactly the legacy observe-then-decide loop.

The predicate contract: ``stop(result, j) -> bool`` is called once per
executed round, for ``j = 0, 1, ...`` in order, where ``result`` is a
stretch outcome holding at least rounds ``0..j``; returning True marks
round ``j`` as the span's last round (that round is kept).  Predicates
may therefore carry running state (cumulative sums, equation systems)
-- which also means they usually double as the span's harvest.

Rows of a stretch may be given either as ``LocalDirection`` sequences
or as local-frame *sign rows* (+1 = own RIGHT, -1 = own LEFT, 0 =
idle) -- numpy int8 arrays from vectorised policies, any int sequence
otherwise.  Signs are in each agent's own frame; chirality mapping
stays inside the simulator.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    ClassVar,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from repro.types import LocalDirection, Observation, RoundOutcome

#: Per-round stop predicate of a speculative span: ``stop(result, j)``
#: is called once per executed round in order; True keeps round ``j``
#: as the last round of the span.
StopPredicate = Callable[[Any, int], bool]

#: A LocalDirection sequence or a local-sign int sequence (numpy int8
#: arrays from vectorised policies, any int sequence otherwise).
Row = Sequence[Any]


def row_is_signs(row: Row) -> bool:
    """Whether ``row`` is a sign row (ints) rather than directions."""
    if len(row) == 0:
        return False
    first = row[0]
    return not isinstance(first, LocalDirection)


def row_directions(row: Row) -> List[LocalDirection]:
    """``row`` as a LocalDirection list (identity for direction rows)."""
    if row_is_signs(row):
        from repro.ring.arrayops import signs_to_directions

        return signs_to_directions(row)
    return list(row)


def opposite_row(row: Row) -> Row:
    """The REVERSEDROUND of ``row``, in the row's own representation."""
    if row_is_signs(row):
        neg = getattr(row, "__neg__", None)
        if neg is not None:
            return cast(Row, neg())  # numpy fast path
        return [-s for s in row]
    return [d.opposite() for d in row]


class Stretch:
    """A plan of ``rounds`` consecutive rounds with known vectors.

    ``Stretch(row, k)`` plays one row ``k`` times; :meth:`of` builds a
    heterogeneous span; ``pairs`` is the internal run-length form
    ``[(row, count), ...]`` consumed by the simulator.  Every stretch
    executor -- the serial fused path, speculative execution, and the
    sharded multi-process path of :mod:`repro.parallel.shard` -- plans
    from this same run-length form, so a plan built once runs
    bit-identically on any of them.
    """

    __slots__ = ("pairs", "rounds")

    def __init__(self, row: Optional[Row] = None, k: int = 1,
                 pairs: Optional[List[Tuple[Row, int]]] = None) -> None:
        if pairs is None:
            if row is None:
                raise ValueError("Stretch needs a row or explicit pairs")
            pairs = [(row, k)]
        self.pairs: List[Tuple[Row, int]] = []
        total = 0
        for r, count in pairs:
            if count < 1:
                raise ValueError("stretch round counts must be >= 1")
            self.pairs.append((r, count))
            total += count
        if total < 1:
            raise ValueError("a stretch must span at least one round")
        self.rounds = total

    @classmethod
    def of(cls, rows: Sequence[Row]) -> "Stretch":
        """A span playing each row of ``rows`` once, in order."""
        return cls(pairs=[(row, 1) for row in rows])

    @classmethod
    def probe_restore(cls, row: Row) -> "Stretch":
        """The probe/REVERSEDROUND pair of ``row`` (2 rounds)."""
        return cls(pairs=[(row, 1), (opposite_row(row), 1)])

    @property
    def last_row(self) -> Row:
        """The final round's row (the REPEAT/RESTORE base afterwards)."""
        return self.pairs[-1][0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stretch rounds={self.rounds} spans={len(self.pairs)}>"


class SpeculativeStretch(Stretch):
    """A planned span that a stop predicate may cut short.

    ``rounds`` is the *optimistic* span length -- an upper bound the
    plan is allowed to execute; the actual number of rounds committed
    is decided by ``stop`` (see the module docstring for the predicate
    contract).  ``stop=None`` degrades to a plain full-span stretch
    that still flows through the speculative execution path.
    """

    __slots__ = ("stop",)

    def __init__(
        self,
        row: Optional[Row] = None,
        k: int = 1,
        pairs: Optional[List[Tuple[Row, int]]] = None,
        stop: Optional[StopPredicate] = None,
    ) -> None:
        super().__init__(row, k, pairs)
        self.stop = stop

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpeculativeStretch rounds<={self.rounds} "
            f"spans={len(self.pairs)}>"
        )


class MaterialisedStretch:
    """Stretch outcome assembled from per-round outcomes (fallback).

    Supports incremental construction (:meth:`append`) so the scalar
    speculative path can evaluate the stop predicate after each
    executed round against the rounds materialised so far.
    """

    __slots__ = ("_outcomes", "n", "rotations", "collision_events")

    #: No raw integer columns on this implementation.
    np: ClassVar[None] = None
    scale: ClassVar[Optional[int]] = None

    def __init__(self, outcomes: Sequence[RoundOutcome] = ()) -> None:
        self._outcomes: List[RoundOutcome] = []
        self.n = 0
        self.rotations: List[int] = []
        self.collision_events = 0
        for outcome in outcomes:
            self.append(outcome)

    @property
    def k(self) -> int:
        return len(self._outcomes)

    def append(self, outcome: RoundOutcome) -> None:
        """File one more executed round of the span."""
        if not self._outcomes:
            self.n = len(outcome.observations)
        self._outcomes.append(outcome)
        self.rotations.append(outcome.rotation_index)
        self.collision_events += outcome.collision_events

    def outcome(self, j: int) -> RoundOutcome:
        return self._outcomes[j]

    def observations(self, j: int) -> Tuple[Observation, ...]:
        return self._outcomes[j].observations

    def dists(self, j: int) -> List[Any]:
        return [o.dist for o in self._outcomes[j].observations]

    def colls(self, j: int) -> List[Any]:
        return [o.coll for o in self._outcomes[j].observations]

    def dist_ints(self, j: int) -> Optional[Sequence[int]]:
        return None

    def coll_ints(self, j: int) -> Optional[Sequence[int]]:
        return None

    def dist_ints_all(self) -> Optional[Any]:
        return None
