"""The public API surface: sessions, policies, the protocol registry and
fleet execution.

This package is the one entry point the CLI, the experiment drivers and
downstream users build on:

* :class:`~repro.api.policy.Policy` -- whole-population decisions (one
  vectorised ``decide(views)`` call per round);
* :class:`~repro.api.session.RingSession` -- builder bundling state,
  scheduler, backend and protocol execution (plan / step / resume);
* the protocol registry -- named, declarative phase pipelines
  (:func:`~repro.api.registry.get_protocol`,
  :func:`~repro.api.registry.list_protocols`);
* :class:`~repro.api.fleet.Fleet` -- many sessions across a worker
  pool, reported as structured JSON.

The legacy ``solve_coordination`` / ``solve_location_discovery``
functions remain as deprecated shims over this package.
"""

from repro.api.policy import (
    ChoiceFn,
    FixedPolicy,
    FunctionPolicy,
    PerAgentPolicy,
    Policy,
    SpeculativeStretch,
    Stretch,
    VectorPolicy,
    as_policy,
)
from repro.api.registry import (
    DEFAULT_DRIVER,
    DRIVER_NAMES,
    Phase,
    ProtocolSpec,
    get_protocol,
    list_protocols,
    register,
)
from repro.api.session import RingSession
from repro.api.fleet import (
    Fleet,
    RunReport,
    SessionSpec,
    run_session_spec,
    sweep,
)

# The contention-channel protocols live under repro.faults (they model
# the adversarial medium) but are ordinary registry entries; they are
# registered here -- not at channels import time -- so the registry is
# fully populated exactly when the API package is, with no import-order
# sensitivity between repro.faults and repro.api.
from repro.faults.channels import register_protocols as _register_contention

_register_contention()

__all__ = [
    "ChoiceFn",
    "DEFAULT_DRIVER",
    "DRIVER_NAMES",
    "FixedPolicy",
    "Fleet",
    "FunctionPolicy",
    "PerAgentPolicy",
    "Phase",
    "Policy",
    "ProtocolSpec",
    "RingSession",
    "RunReport",
    "SessionSpec",
    "SpeculativeStretch",
    "Stretch",
    "VectorPolicy",
    "as_policy",
    "get_protocol",
    "list_protocols",
    "register",
    "run_session_spec",
    "sweep",
]
