"""Protocol registry: named end-to-end pipelines as declarative phases.

The hand-rolled phase chains that used to live in
:mod:`repro.protocols.full_stack` are expressed here as data: a
registered :class:`ProtocolSpec` plans a list of named :class:`Phase`
steps for a concrete setting (model, parity, common sense) and collects
the final result from the scheduler.  Planning is separated from
execution, so per-phase round counts, phase listing and stepwise
execution/resume (see :class:`~repro.api.session.RingSession`) need no
protocol-specific code.

Every phase exists in two interchangeable implementations, selected by
the ``driver`` planning argument:

* ``"native"`` (the default): the whole-population policies of
  :mod:`repro.protocols.policies` -- one ``decide`` per round over
  columnar state, zero per-agent dispatch;
* ``"callback"``: the legacy per-agent drivers, kept as the executable
  reference specification.

The two are bit-exact (property-tested in
``tests/test_native_policies.py``).  Routing follows Table I / Table II
of the paper exactly as before; see the
:mod:`repro.protocols.full_stack` table for the per-cell pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.scheduler import Scheduler
from repro.exceptions import InfeasibleProblemError, ProtocolError
from repro.protocols.base import (
    CoordinationResult,
    KEY_LD_GAPS,
    LocationDiscoveryResult,
)
from repro.types import Model

#: Driver used when a plan is requested without an explicit choice.
DEFAULT_DRIVER = "native"

DRIVER_NAMES = ("native", "callback")


def resolve_driver(driver: Optional[str]) -> str:
    """Normalise a driver name (None means the default)."""
    if driver is None:
        return DEFAULT_DRIVER
    if driver not in DRIVER_NAMES:
        known = ", ".join(DRIVER_NAMES)
        raise ProtocolError(f"unknown driver {driver!r}; known: {known}")
    return driver


@dataclass(frozen=True)
class Phase:
    """One named step of a protocol pipeline.

    Attributes:
        name: Phase label, the key under which its round count is
            reported (``rounds_by_phase``).
        run: Executes the phase against a scheduler; any return value is
            ignored (phases communicate through agent memory).
        driver: Which implementation ``run`` uses: ``"native"`` (a
            whole-population policy) or ``"callback"`` (the per-agent
            reference driver).
    """

    name: str
    run: Callable[[Scheduler], object]
    driver: str = DEFAULT_DRIVER


@dataclass(frozen=True)
class ProtocolSpec:
    """A registered end-to-end protocol.

    Attributes:
        name: Registry key (e.g. ``"location-discovery"``).
        description: One-line human description for listings.
        plan: Maps ``(scheduler, common_sense, driver)`` to the concrete
            phase list for that setting.  Raises
            :class:`~repro.exceptions.InfeasibleProblemError` for
            settings the paper proves unsolvable, before any round runs.
        collect: Builds the result object from the scheduler and the
            recorded per-phase round counts once every phase has run.
    """

    name: str
    description: str
    plan: Callable[[Scheduler, bool, str], List[Phase]]
    collect: Callable[[Scheduler, Dict[str, int]], object]


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register(spec: ProtocolSpec) -> ProtocolSpec:
    """Add a protocol to the registry (last registration wins)."""
    _REGISTRY[spec.name] = spec
    return spec


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a registered protocol by name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ProtocolError(f"unknown protocol {name!r}; registered: {known}")
    return spec


def list_protocols() -> List[ProtocolSpec]:
    """All registered protocols, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _coordination_phases_native(sched: Scheduler, common_sense: bool):
    from repro.protocols.policies import direction_agreement as da
    from repro.protocols.policies import leader_election as le
    from repro.protocols.policies import nmove_perceptive as nps
    from repro.protocols.policies import nontrivial_move as nm

    return {
        "assume_common_frame": da.assume_common_frame,
        "agree_direction_odd": da.agree_direction_odd,
        "agree_from_nmove": da.agree_direction_from_nontrivial_move,
        "elect_common_sense": le.elect_leader_common_sense,
        "elect_with_nmove": le.elect_leader_with_nontrivial_move,
        "nmove_from_leader": nm.nmove_from_leader,
        "nmove_seeded_family": nm.nmove_seeded_family,
        "nmove_perceptive": nps.nmove_perceptive,
    }


def _coordination_phases_callback(sched: Scheduler, common_sense: bool):
    from repro.protocols.direction_agreement import (
        agree_direction_from_nontrivial_move,
        agree_direction_odd,
        assume_common_frame,
    )
    from repro.protocols.leader_election import (
        elect_leader_common_sense,
        elect_leader_with_nontrivial_move,
    )
    from repro.protocols.nmove_perceptive import nmove_perceptive
    from repro.protocols.nontrivial_move import (
        nmove_from_leader,
        nmove_seeded_family,
    )

    return {
        "assume_common_frame": assume_common_frame,
        "agree_direction_odd": agree_direction_odd,
        "agree_from_nmove": agree_direction_from_nontrivial_move,
        "elect_common_sense": elect_leader_common_sense,
        "elect_with_nmove": elect_leader_with_nontrivial_move,
        "nmove_from_leader": nmove_from_leader,
        "nmove_seeded_family": nmove_seeded_family,
        "nmove_perceptive": nmove_perceptive,
    }


def _coordination_plan(
    sched: Scheduler, common_sense: bool, driver: Optional[str] = None
) -> List[Phase]:
    """Table I / Table II routing for the coordination problems."""
    driver = resolve_driver(driver)
    impl = (
        _coordination_phases_native
        if driver == "native"
        else _coordination_phases_callback
    )(sched, common_sense)

    def phase(name: str, key: str) -> Phase:
        return Phase(name, impl[key], driver)

    if common_sense:
        return [
            phase("direction_agreement", "assume_common_frame"),
            phase("leader_election", "elect_common_sense"),
            phase("nontrivial_move", "nmove_from_leader"),
        ]
    if not sched.state.parity_even:
        return [
            phase("direction_agreement", "agree_direction_odd"),
            phase("leader_election", "elect_common_sense"),
            phase("nontrivial_move", "nmove_from_leader"),
        ]
    nmove_key = (
        "nmove_perceptive"
        if sched.model is Model.PERCEPTIVE
        else "nmove_seeded_family"
    )
    return [
        phase("nontrivial_move", nmove_key),
        phase("direction_agreement", "agree_from_nmove"),
        phase("leader_election", "elect_with_nmove"),
    ]


def _collect_coordination(
    sched: Scheduler, rounds_by_phase: Dict[str, int]
) -> CoordinationResult:
    from repro.protocols.leader_election import leader_id

    return CoordinationResult(
        rounds=sched.rounds,
        leader_id=leader_id(sched),
        rounds_by_phase=rounds_by_phase,
    )


def _discovery_plan(
    sched: Scheduler, driver: Optional[str] = None
) -> List[Phase]:
    """The best discovery phase sequence for the scheduler's setting."""
    driver = resolve_driver(driver)
    if driver == "native":
        from repro.protocols.policies.distances import discover_distances
        from repro.protocols.policies.location_discovery import (
            sweep_rotation_one,
            sweep_rotation_two,
        )
        from repro.protocols.policies.neighbor_discovery import (
            discover_neighbors,
        )
        from repro.protocols.policies.ring_distance import (
            publish_ring_size,
            ring_distances,
        )
    else:
        from repro.protocols.distances import discover_distances
        from repro.protocols.location_discovery import (
            sweep_rotation_one,
            sweep_rotation_two,
        )
        from repro.protocols.neighbor_discovery import discover_neighbors
        from repro.protocols.ring_distance import (
            publish_ring_size,
            ring_distances,
        )

    def ensure_neighbors(sched: Scheduler) -> None:
        from repro.protocols.neighbor_discovery import KEY_GAP_RIGHT

        # NMoveS may already have run neighbor discovery (it skips it
        # only when its first probe succeeds).  Every view's memory is
        # a slot of the shared columnar store, so the column test is
        # the per-view test.
        if not sched.population.all_set(KEY_GAP_RIGHT):
            discover_neighbors(sched)

    model = sched.model
    if model is Model.LAZY:
        return [Phase("discovery", sweep_rotation_one, driver)]
    if model is Model.BASIC:
        return [Phase("discovery", sweep_rotation_two, driver)]
    if not sched.state.parity_even:
        # Odd n: the rotation-2 sweep is already optimal up to O(log N)
        # (Table I's odd row); Algorithm 6's alternating pairing needs
        # even n.
        return [Phase("discovery", sweep_rotation_two, driver)]

    return [
        Phase("neighbor_discovery", ensure_neighbors, driver),
        Phase("ring_distances", ring_distances, driver),
        Phase("ring_size_broadcast", publish_ring_size, driver),
        Phase("discovery", discover_distances, driver),
    ]


def _location_discovery_plan(
    sched: Scheduler, common_sense: bool, driver: Optional[str] = None
) -> List[Phase]:
    if sched.model is Model.BASIC and sched.state.parity_even:
        raise InfeasibleProblemError(
            "location discovery in the basic model with even n is "
            "impossible (Lemma 5): every rotation index is even, so an "
            "agent can never visit odd-ring-distance positions"
        )
    return _coordination_plan(sched, common_sense, driver) + _discovery_plan(
        sched, driver
    )


def _collect_location_discovery(
    sched: Scheduler, rounds_by_phase: Dict[str, int]
) -> LocationDiscoveryResult:
    gaps = []
    for view in sched.views:
        if KEY_LD_GAPS not in view.memory:
            raise ProtocolError("an agent ended without a gap vector: bug")
        gaps.append(list(view.memory[KEY_LD_GAPS]))
    return LocationDiscoveryResult(
        rounds=sched.rounds,
        rounds_by_phase=rounds_by_phase,
        gaps_by_agent=gaps,
    )


COORDINATION = register(ProtocolSpec(
    name="coordination",
    description="direction agreement + leader election + nontrivial "
    "move, routed per Table I/II",
    plan=_coordination_plan,
    collect=_collect_coordination,
))

LOCATION_DISCOVERY = register(ProtocolSpec(
    name="location-discovery",
    description="full location discovery from a cold start "
    "(coordination phases + the optimal discovery sweep)",
    plan=_location_discovery_plan,
    collect=_collect_location_discovery,
))
