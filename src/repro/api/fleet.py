"""Fleet execution: many independent ring sessions, one structured report.

A :class:`Fleet` takes a list of :class:`SessionSpec` values (seed /
size / model / backend / protocol combinations -- see :func:`sweep` for
the cartesian-product builder), runs each as its own
:class:`~repro.api.session.RingSession` across a
:mod:`concurrent.futures` worker pool, and emits a :class:`RunReport`
whose payload is plain JSON.  Sessions share nothing, so results are
bit-identical regardless of executor kind or worker count (tested);
ordering always follows the spec list.

Executors: ``"process"`` (default; real parallelism for this CPU-bound
workload on multicore hosts), ``"thread"`` (GIL-bound, but no spawn
cost) and ``"serial"`` (in-process baseline, also the timing reference
for the fleet benchmark).

The process executor rides the persistent warm pools and shared-memory
arenas of :mod:`repro.parallel`: the pool for a worker count is created
once and reused across every subsequent ``run()``, spec payloads and
result rows travel through shm slots rather than pickles, and
:meth:`Fleet.warm` pre-spawns the workers so benchmarks can keep pool
spin-up out of their timed regions.

With caching on (``cache=True``, or ``REPRO_CACHE=1`` in the
environment), ``run()`` first partitions the sweep against the
content-addressed run store (:mod:`repro.store`): specs whose key is
already stored are served by fetch, the remaining *distinct* keys are
computed once each through the configured executor (so warm pools only
ever receive misses), and duplicate specs -- including specs differing
only in backend or driver, which are bit-exact equivalent -- fan out
from the one computation.  Rows keep their ``{"spec", "result",
"seconds"}`` shape and spec order either way; the report additionally
carries a ``cache`` summary (hits / misses / deduped).
"""

from __future__ import annotations

import copy
import json
import os
import platform
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.api.registry import DEFAULT_DRIVER
from repro.exceptions import ConfigurationError, ReproError
from repro.faults.plan import FaultPlan
from repro.types import Model

#: Schema version of the RunReport JSON payload.
REPORT_SCHEMA = 1

_EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SessionSpec:
    """One session of a fleet, as plain (picklable, JSON-able) data.

    Mirrors the :class:`~repro.api.session.RingSession` builder
    arguments; ``protocol`` names a registry entry and ``backend`` any
    registered kinematics backend (``lattice``, ``fraction`` or
    ``array``).
    """

    n: int
    protocol: str = "location-discovery"
    model: str = "basic"
    backend: str = "lattice"
    seed: int = 0
    common_sense: bool = False
    id_bound: Optional[int] = None
    config: str = "random"
    driver: str = DEFAULT_DRIVER
    #: Opt-in fast mode: skip the provably-restoring rounds of
    #: probe/restore pairs (native driver; see RingSession docs).
    unchecked: bool = False
    #: Fault plan as canonical JSON (``None`` = fault-free).  Accepts a
    #: FaultPlan, a document dict or a JSON string at construction;
    #: parseable inputs normalise to the canonical string (so equal
    #: plans compare and dedup as equal specs), unparseable strings are
    #: kept verbatim -- such a spec is constructible but unkeyable
    #: (``safe_key`` returns None) and fails at run time.
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if self.faults is None:
            return
        try:
            plan = FaultPlan.coerce(self.faults)  # type: ignore[arg-type]
        except ConfigurationError:
            if not isinstance(self.faults, str):
                raise
            return
        object.__setattr__(
            self, "faults", None if plan is None else plan.canonical()
        )

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        # Fault-free specs serialise exactly as they did before the
        # fault axis existed: payload bytes and store documents are
        # unchanged unless a plan is actually present.
        if data.get("faults") is None:
            del data["faults"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SessionSpec":
        return cls(**data)


def run_session_spec(spec: SessionSpec) -> Dict[str, object]:
    """Execute one spec in the current process; returns its JSON row.

    Module-level (not a method) so process-pool workers can pickle it.
    """
    from repro.api.session import RingSession

    session = RingSession(
        n=spec.n,
        model=Model(spec.model),
        backend=spec.backend,
        seed=spec.seed,
        common_sense=spec.common_sense,
        id_bound=spec.id_bound,
        config=spec.config,
        driver=spec.driver,
        unchecked=spec.unchecked,
        faults=spec.faults,
    )
    start = time.perf_counter()
    if session.faults is None:
        result = session.run(spec.protocol)
        elapsed = time.perf_counter() - start
        return {
            "spec": spec.to_dict(),
            "result": result.to_dict(),
            "seconds": round(elapsed, 6),
        }
    # Faulted specs degrade gracefully instead of failing the fleet:
    # a run the protocol's own checks abort ("detect") becomes a row
    # with a null result and the error recorded in the faults block; a
    # run that completes carries its (possibly degraded) result plus
    # the plan that produced it.
    faults_block: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "plan": json.loads(session.faults.canonical()),
    }
    try:
        result = session.run(spec.protocol)
    except ReproError as exc:
        elapsed = time.perf_counter() - start
        faults_block["outcome"] = "detected"
        faults_block["error"] = type(exc).__name__
        faults_block["message"] = str(exc)
        return {
            "spec": spec.to_dict(),
            "result": None,
            "faults": faults_block,
            "seconds": round(elapsed, 6),
        }
    elapsed = time.perf_counter() - start
    faults_block["outcome"] = "completed"
    return {
        "spec": spec.to_dict(),
        "result": result.to_dict(),
        "faults": faults_block,
        "seconds": round(elapsed, 6),
    }


@dataclass
class RunReport:
    """Structured outcome of one fleet run (JSON-ready).

    Attributes:
        results: One row per spec, in spec order: ``{"spec": ...,
            "result": ..., "seconds": ...}``.
        executor: Which executor kind ran the fleet.
        workers: Worker count used (1 for serial).
        seconds_total: Wall-clock of the whole fleet run.
        cpu_count: Host CPU count (parallel speedup context).
        cache: Run-cache summary (hits / misses / deduped /
            uncacheable) when the fleet ran with caching on, else
            ``None`` -- the payload shape is unchanged for uncached
            runs.
    """

    results: List[Dict[str, object]] = field(default_factory=list)
    executor: str = "serial"
    workers: int = 1
    seconds_total: float = 0.0
    cpu_count: int = 1
    cache: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "schema": REPORT_SCHEMA,
            "executor": self.executor,
            "workers": self.workers,
            "seconds_total": round(self.seconds_total, 6),
            "cpu_count": self.cpu_count,
            "python": platform.python_version(),
            "results": self.results,
        }
        if self.cache is not None:
            payload["cache"] = dict(self.cache)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def payloads(self) -> List[Dict[str, object]]:
        """The timing-free rows (what determinism tests compare).

        Fault-free rows keep their historical two-key shape exactly;
        rows produced under a fault plan additionally carry their
        ``faults`` block (plan + outcome + error, no timings).
        """
        payloads: List[Dict[str, object]] = []
        for row in self.results:
            payload: Dict[str, object] = {
                "spec": row["spec"], "result": row["result"]
            }
            if "faults" in row:
                payload["faults"] = row["faults"]
            payloads.append(payload)
        return payloads


class Fleet:
    """Runs many sessions across a worker pool.

    Args:
        specs: Session specs, executed in order (results keep the
            order regardless of completion order).
        workers: Pool size; defaults to ``min(len(specs), cpu_count)``.
        executor: ``"process"``, ``"thread"`` or ``"serial"``.
        cache: Compute-or-fetch against the content-addressed run
            store (:mod:`repro.store`).  ``None`` (the default) defers
            to the ``REPRO_CACHE`` environment switch; fetched and
            deduplicated results are bit-identical to computed ones.
        cache_dir: Store directory override (default
            ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).
    """

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        workers: Optional[int] = None,
        executor: str = "process",
        cache: Optional[bool] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(_EXECUTORS)}"
            )
        self.specs = list(specs)
        cpu = os.cpu_count() or 1
        if workers is None:
            workers = max(1, min(len(self.specs), cpu))
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = 1 if executor == "serial" else workers
        self.executor = executor
        self.cache = cache
        self.cache_dir = cache_dir

    def warm(self) -> None:
        """Pre-spawn the process pool (no-op for the other executors).

        Benchmarks call this before their timed repeats so pool
        spin-up and worker imports never land inside a timed region;
        ``run()`` warms lazily anyway, so calling it is optional.
        """
        if self.executor == "process":
            from repro.parallel.pool import get_pool

            get_pool(self.workers).warm()

    def _execute(
        self, specs: Sequence[SessionSpec]
    ) -> List[Dict[str, object]]:
        """Run ``specs`` through the configured executor, in order."""
        if not specs:
            return []
        if self.executor == "serial":
            return [run_session_spec(spec) for spec in specs]
        if self.executor == "process":
            from repro.parallel.pool import run_specs_pooled

            return run_specs_pooled(list(specs), self.workers)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(run_session_spec, specs))

    def _run_cached(self) -> RunReport:
        """The compute-or-fetch path: partition, dedup, fan out.

        Specs already in the store are served by fetch; the remaining
        *distinct* keys are computed once each through the configured
        executor (warm pools only ever see misses); duplicates copy the
        one computed row with ``seconds`` 0.0.  Row shape and spec
        order match the uncached path exactly.
        """
        from repro.store.keys import safe_key
        from repro.store.service import get_store

        store = get_store(self.cache_dir)
        start = time.perf_counter()
        rows: List[Optional[Dict[str, object]]] = [None] * len(self.specs)
        hits = misses = deduped = uncacheable = 0
        # digest -> list of spec indices sharing it (dedup groups).
        to_compute: "OrderedDict[str, List[int]]" = OrderedDict()
        keyed_docs: Dict[str, Dict[str, object]] = {}
        for index, spec in enumerate(self.specs):
            # Faulted specs are addressable (their plan is part of the
            # run key) but always computed: a faulted run's outcome may
            # be an error row, which the store's result envelope does
            # not model.
            keyed = safe_key(spec) if spec.faults is None else None
            if keyed is None:
                uncacheable += 1
                row = run_session_spec(spec)
                rows[index] = row
                continue
            digest, key_doc = keyed
            if digest in to_compute:
                to_compute[digest].append(index)
                deduped += 1
                continue
            fetch_start = time.perf_counter()
            entry = store.get(digest)
            if entry is not None:
                hits += 1
                rows[index] = {
                    "spec": spec.to_dict(),
                    "result": entry["result"],
                    "seconds": round(time.perf_counter() - fetch_start, 6),
                }
                continue
            misses += 1
            to_compute[digest] = [index]
            keyed_docs[digest] = key_doc
        computed = self._execute(
            [self.specs[group[0]] for group in to_compute.values()]
        )
        for (digest, group), row in zip(to_compute.items(), computed):
            primary = group[0]
            rows[primary] = row
            store.put(
                digest,
                row["result"],  # type: ignore[arg-type]
                key=keyed_docs[digest],
                spec=self.specs[primary].to_dict(),
                backend=self.specs[primary].backend,
            )
            for index in group[1:]:
                rows[index] = {
                    "spec": self.specs[index].to_dict(),
                    "result": copy.deepcopy(row["result"]),
                    "seconds": 0.0,
                }
        elapsed = time.perf_counter() - start
        return RunReport(
            results=[row for row in rows if row is not None],
            executor=self.executor,
            workers=self.workers,
            seconds_total=elapsed,
            cpu_count=os.cpu_count() or 1,
            cache={
                "enabled": True,
                "hits": hits,
                "misses": misses,
                "deduped": deduped,
                "uncacheable": uncacheable,
                "cache_dir": str(store.cache_dir),
            },
        )

    def run(self) -> RunReport:
        """Execute every spec; returns the structured report."""
        from repro.store.service import resolve_cache

        if resolve_cache(self.cache):
            return self._run_cached()
        start = time.perf_counter()
        rows = self._execute(self.specs)
        elapsed = time.perf_counter() - start
        return RunReport(
            results=rows,
            executor=self.executor,
            workers=self.workers,
            seconds_total=elapsed,
            cpu_count=os.cpu_count() or 1,
        )


def sweep(
    protocol: str = "location-discovery",
    sizes: Iterable[int] = (8,),
    seeds: Iterable[int] = (0,),
    models: Iterable[Union[Model, str]] = (Model.PERCEPTIVE,),
    backends: Iterable[str] = ("lattice",),
    common_sense: bool = False,
    id_bound: Optional[int] = None,
    config: str = "random",
    driver: str = DEFAULT_DRIVER,
    unchecked: bool = False,
    faults: Optional[str] = None,
) -> List[SessionSpec]:
    """Cartesian-product spec builder: sizes x seeds x models x backends.

    The iteration order is sizes-major (then seeds, models, backends),
    so reports stay diffable across runs.
    """
    specs: List[SessionSpec] = []
    for n in sizes:
        for seed in seeds:
            for model in models:
                model_name = (
                    model.value if isinstance(model, Model) else str(model)
                )
                for backend in backends:
                    specs.append(SessionSpec(
                        n=n,
                        protocol=protocol,
                        model=model_name,
                        backend=backend,
                        seed=seed,
                        common_sense=common_sense,
                        id_bound=id_bound,
                        config=config,
                        driver=driver,
                        unchecked=unchecked,
                        faults=faults,
                    ))
    return specs
