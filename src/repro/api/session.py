"""RingSession: the one-stop entry point for driving a ring.

A session bundles a world state, a scheduler (with its kinematics
backend) and the protocol registry behind a single builder::

    session = RingSession(n=16, model="perceptive", backend="lattice",
                          seed=7)
    result = session.run("location-discovery")

``backend=`` accepts ``"lattice"`` (default), ``"fraction"`` (exact
reference) or ``"array"`` (whole-column fused stretches for large
rings; numpy-accelerated when numpy is installed) -- results are
bit-identical across all three for both drivers.  ``shards=`` puts the
array backend's fused spans onto a pool of worker processes over
shared memory (:mod:`repro.parallel`), still bit-identical; it is only
worth it for large rings (CLI: ``--shard``).

Sessions can also wrap existing objects (:meth:`RingSession.from_state`,
:meth:`RingSession.from_scheduler`), plan a protocol without running it
(:meth:`plan`), execute it phase by phase (:meth:`step` /
:meth:`resume`), and drive ad-hoc rounds with a
:class:`~repro.api.policy.Policy` (:meth:`run_round`,
:meth:`run_rounds`, :meth:`run_fixed`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.api.policy import PolicyLike
from repro.api.registry import (
    Phase,
    ProtocolSpec,
    get_protocol,
    resolve_driver,
)
from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.exceptions import ConfigurationError, ProtocolError
from repro.faults.plan import FaultPlan, FaultPlanLike
from repro.ring.backends import BACKEND_NAMES, DEFAULT_BACKEND, BackendSpec
from repro.ring.state import RingState
from repro.types import LocalDirection, Model, RoundOutcome

#: Named initial-configuration generators accepted by the builder.
_CONFIGS = {
    "random": "random_configuration",
    "jittered": "jittered_equidistant_configuration",
    "clustered": "clustered_configuration",
}


def _resolve_model(model: Union[Model, str]) -> Model:
    return model if isinstance(model, Model) else Model(model)


def _sharded_backend(backend: BackendSpec, shards: int) -> BackendSpec:
    """Resolve ``shards=``: the array backend, sharded when shards > 1."""
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if backend not in (None, "array"):
        raise ConfigurationError(
            f"shards= applies to the array backend only, not "
            f"backend={backend!r}"
        )
    if shards == 1:
        return "array"
    from repro.parallel.shard import ShardedArrayBackend

    return ShardedArrayBackend(shards=shards)


class RingSession:
    """One ring, one scheduler, one protocol run (or many ad-hoc rounds).

    Attributes:
        scheduler: The underlying :class:`~repro.core.scheduler.Scheduler`.
        common_sense: Whether the agents share a sense of direction (the
            Table II setting); threads into protocol planning, and into
            configuration generation when the session builds its own
            state.
        driver: Which phase implementation protocol plans use:
            ``"native"`` (whole-population policies over columnar state,
            the default) or ``"callback"`` (the legacy per-agent
            reference drivers).  The two are bit-exact.
        unchecked: Opt-in fast mode (native driver only): the provably
            restoring rounds of probe/restore pairs are skipped -- their
            net rotation is committed directly instead of simulated.
            Protocol results and final positions are unchanged
            (property-tested); round counts and agent logs are not,
            because the skipped rounds never happen.  CLI:
            ``--unchecked``.
        shards: When > 1, run the array backend's fused spans across
            this many worker processes over shared memory
            (:class:`~repro.parallel.shard.ShardedArrayBackend`);
            results stay bit-identical to the serial backends.  Only
            valid with ``backend=None`` or ``"array"``.  CLI:
            ``--shard``.
    """

    def __init__(
        self,
        n: Optional[int] = None,
        *,
        model: Union[Model, str, None] = None,
        backend: BackendSpec = None,
        seed: Optional[int] = None,
        common_sense: bool = False,
        driver: Optional[str] = None,
        id_bound: Optional[int] = None,
        config: Optional[str] = None,
        state: Optional[RingState] = None,
        scheduler: Optional[Scheduler] = None,
        cross_validate: bool = False,
        unchecked: bool = False,
        shards: Optional[int] = None,
        cache: bool = False,
        cache_dir: Optional[str] = None,
        faults: FaultPlanLike = None,
    ) -> None:
        self.common_sense = common_sense
        self.driver = resolve_driver(driver)
        self.cache = cache
        self.cache_dir = cache_dir
        #: The normalised fault plan (None when fault-free); accepts a
        #: FaultPlan, a JSON string or a document dict (CLI:
        #: ``--faults``).  An empty plan normalises to None, so a
        #: ``FaultPlan.none()`` session is structurally identical to a
        #: plain one.
        self.faults: Optional[FaultPlan] = FaultPlan.coerce(faults)
        #: SessionSpec kwargs (minus protocol) when this session was
        #: built from generator arguments and is therefore addressable
        #: in the run store; ``None`` means "always compute".
        self._cache_args: Optional[Dict[str, object]] = None
        if scheduler is not None:
            # A scheduler already fixes every one of these; accepting an
            # override here would silently run with the scheduler's own
            # values (e.g. a cross-backend comparison comparing one
            # backend against itself).
            ignored = [
                name
                for name, given in (
                    ("n", n is not None),
                    ("state", state is not None),
                    ("model", model is not None),
                    ("backend", backend is not None),
                    ("seed", seed is not None),
                    ("id_bound", id_bound is not None),
                    ("config", config is not None),
                    ("cross_validate", cross_validate),
                    ("unchecked", unchecked),
                    ("shards", shards is not None),
                    ("faults", self.faults is not None),
                )
                if given
            ]
            if ignored:
                raise ConfigurationError(
                    "pass scheduler= alone: it already fixes "
                    + ", ".join(ignored)
                )
            self.scheduler = scheduler
            self.faults = scheduler.faults
        else:
            if shards is not None and shards > 1:
                backend_label: Optional[str] = "array"
            elif backend is None:
                backend_label = DEFAULT_BACKEND
            elif isinstance(backend, str):
                backend_label = backend
            else:
                backend_label = getattr(backend, "name", None)
            if shards is not None:
                backend = _sharded_backend(backend, shards)
            model = _resolve_model(model) if model is not None else Model.BASIC
            if state is None:
                if n is None:
                    raise ConfigurationError(
                        "RingSession needs n=, state= or scheduler="
                    )
                # Generator-built sessions are fully described by plain
                # data, so their runs are addressable in the run store.
                # Wrapped states, cross-validating schedulers and
                # unregistered backend objects always compute.
                if (
                    not cross_validate
                    and isinstance(backend_label, str)
                    and backend_label in BACKEND_NAMES
                ):
                    self._cache_args = {
                        "n": n,
                        "model": model.value,
                        "backend": backend_label,
                        "seed": seed if seed is not None else 0,
                        "common_sense": common_sense,
                        "id_bound": id_bound,
                        "config": config if config is not None else "random",
                        "driver": self.driver,
                        "unchecked": unchecked,
                        "faults": (
                            self.faults.canonical()
                            if self.faults is not None
                            else None
                        ),
                    }
                state = self._build_state(
                    config if config is not None else "random",
                    n=n,
                    seed=seed if seed is not None else 0,
                    id_bound=id_bound,
                    common_sense=common_sense,
                )
            else:
                # These only parameterise configuration *generation*;
                # accepting them alongside an explicit state would
                # silently hand back the state unchanged.
                ignored = [
                    name
                    for name, given in (
                        ("seed", seed is not None),
                        ("id_bound", id_bound is not None),
                        ("config", config is not None),
                    )
                    if given
                ]
                if ignored:
                    raise ConfigurationError(
                        "pass either state= or the generator arguments "
                        + ", ".join(ignored)
                        + ", not both"
                    )
                if n is not None and n != state.n:
                    raise ConfigurationError(
                        f"n={n} contradicts the given state (n={state.n})"
                    )
            self.scheduler = Scheduler(
                state, model, cross_validate, backend=backend,
                unchecked=unchecked, faults=self.faults,
            )
        self._spec: Optional[ProtocolSpec] = None
        self._pending: List[Phase] = []
        self.phase_rounds: Dict[str, int] = {}
        self.phase_drivers: Dict[str, str] = {}

    @staticmethod
    def _build_state(
        config: str,
        *,
        n: int,
        seed: int,
        id_bound: Optional[int],
        common_sense: bool,
    ) -> RingState:
        from repro.ring import configs

        fn_name = _CONFIGS.get(config)
        if fn_name is None:
            known = ", ".join(sorted(_CONFIGS))
            raise ConfigurationError(
                f"unknown configuration generator {config!r}; known: {known}"
            )
        fn = getattr(configs, fn_name)
        return fn(n, seed=seed, id_bound=id_bound, common_sense=common_sense)

    @classmethod
    def from_state(
        cls,
        state: RingState,
        *,
        model: Union[Model, str] = Model.BASIC,
        backend: BackendSpec = None,
        common_sense: bool = False,
        driver: Optional[str] = None,
        cross_validate: bool = False,
        unchecked: bool = False,
        shards: Optional[int] = None,
        faults: FaultPlanLike = None,
    ) -> "RingSession":
        """Wrap an existing world state (the caller keeps ownership)."""
        return cls(
            state=state, model=model, backend=backend,
            common_sense=common_sense, driver=driver,
            cross_validate=cross_validate, unchecked=unchecked,
            shards=shards, faults=faults,
        )

    @classmethod
    def from_scheduler(
        cls,
        scheduler: Scheduler,
        *,
        common_sense: bool = False,
        driver: Optional[str] = None,
    ) -> "RingSession":
        """Wrap an existing scheduler (continuing its round count)."""
        return cls(
            scheduler=scheduler, common_sense=common_sense, driver=driver
        )

    # -- passthroughs ---------------------------------------------------

    @property
    def state(self) -> RingState:
        """The ground-truth world state (tests/benchmarks only)."""
        return self.scheduler.state

    @property
    def model(self) -> Model:
        return self.scheduler.model

    @property
    def views(self) -> List[AgentView]:
        return self.scheduler.views

    @property
    def rounds(self) -> int:
        """Rounds executed so far (the paper's cost measure)."""
        return self.scheduler.rounds

    @property
    def backend_name(self) -> str:
        return self.scheduler.simulator.backend.name

    def run_round(self, policy: PolicyLike) -> RoundOutcome:
        """Execute one ad-hoc round with a policy or choice function."""
        return self.scheduler.run_round(policy)

    def run_rounds(self, policy: PolicyLike, k: int) -> List[RoundOutcome]:
        """Execute ``k`` ad-hoc rounds with a policy or choice function."""
        return self.scheduler.run_rounds(policy, k)

    def run_fixed(self, direction: LocalDirection, k: int = 1) -> RoundOutcome:
        """Every agent plays ``direction`` for ``k`` rounds (batched)."""
        return self.scheduler.run_fixed(direction, k)

    # -- protocol execution ---------------------------------------------

    def plan(self, protocol: Union[str, ProtocolSpec]) -> List[Phase]:
        """The phase list ``protocol`` would run in this session's
        setting, without executing anything.

        Raises:
            InfeasibleProblemError: for settings the paper proves
                unsolvable (e.g. location discovery, basic model, even n).
        """
        spec = (
            protocol
            if isinstance(protocol, ProtocolSpec)
            else get_protocol(protocol)
        )
        return spec.plan(self.scheduler, self.common_sense, self.driver)

    def start(self, protocol: Union[str, ProtocolSpec]) -> List[Phase]:
        """Plan ``protocol`` and stage its phases for :meth:`step` /
        :meth:`resume`; returns the planned phases."""
        spec = (
            protocol
            if isinstance(protocol, ProtocolSpec)
            else get_protocol(protocol)
        )
        phases = spec.plan(self.scheduler, self.common_sense, self.driver)
        self._spec = spec
        self._pending = list(phases)
        self.phase_rounds = {}
        self.phase_drivers = {}
        return phases

    @property
    def pending_phases(self) -> List[Phase]:
        """Phases staged but not yet executed."""
        return list(self._pending)

    def step(self) -> Tuple[str, int]:
        """Execute the next staged phase; returns ``(name, rounds)``."""
        if not self._pending:
            raise ProtocolError(
                "no staged phase to step; call start(protocol) first"
            )
        phase = self._pending.pop(0)
        before = self.scheduler.rounds
        phase.run(self.scheduler)
        used = self.scheduler.rounds - before
        self.phase_rounds[phase.name] = used
        self.phase_drivers[phase.name] = phase.driver
        return phase.name, used

    def resume(self) -> object:
        """Run all remaining staged phases and collect the result."""
        if self._spec is None:
            raise ProtocolError(
                "no protocol in progress; call start(protocol) or "
                "run(protocol)"
            )
        while self._pending:
            self.step()
        return self._spec.collect(self.scheduler, dict(self.phase_rounds))

    def run(self, protocol: Union[str, ProtocolSpec]) -> object:
        """Plan and execute ``protocol`` end to end; returns its result
        (e.g. :class:`~repro.protocols.base.LocationDiscoveryResult`).

        With ``cache=True`` (strictly opt-in for sessions -- a fetched
        run leaves the scheduler untouched, which matters to callers
        that inspect ring state afterwards), the run store is consulted
        first: a hit returns the stored result rebuilt into its result
        object, bit-identical to computing; a miss computes here and
        files the result.  ``phase_rounds`` is populated either way
        (``phase_drivers`` reads ``"cached"`` on a hit).
        """
        if (
            self.cache
            and isinstance(protocol, str)
            and self._cache_args is not None
            and self.scheduler.rounds == 0
            # Faulted runs are addressable but always computed: their
            # outcome may be an error, which the store's result
            # envelope does not model.
            and self.faults is None
        ):
            result = self._run_cached(protocol)
            if result is not None:
                return result
        self.start(protocol)
        return self.resume()

    def _run_cached(self, protocol: str) -> Optional[object]:
        """Compute-or-fetch ``protocol`` through the run store.

        Returns the result object, or ``None`` when the spec turned out
        uncacheable (caller computes as if caching were off).
        """
        from repro.api.fleet import SessionSpec
        from repro.protocols.base import result_from_dict
        from repro.store.keys import safe_key
        from repro.store.service import get_store

        spec = SessionSpec(protocol=protocol, **self._cache_args)  # type: ignore[arg-type]
        keyed = safe_key(spec)
        if keyed is None:
            return None
        digest, key_doc = keyed
        store = get_store(self.cache_dir)
        entry = store.get(digest)
        if entry is not None:
            payload = entry["result"]
            result = result_from_dict(payload)  # type: ignore[arg-type]
            rounds_by_phase = payload.get("rounds_by_phase", {})  # type: ignore[union-attr]
            self._spec = get_protocol(protocol)
            self._pending = []
            rounds = {
                str(name): int(count)  # type: ignore[arg-type]
                for name, count in dict(rounds_by_phase).items()
            }
            # The stored envelope sorts keys; the key document's phase
            # list restores plan order for display parity with a
            # computed run.
            self.phase_rounds = {
                name: rounds.pop(name)
                for name in key_doc.get("phases", [])  # type: ignore[union-attr]
                if name in rounds
            }
            self.phase_rounds.update(rounds)
            self.phase_drivers = {
                name: "cached" for name in self.phase_rounds
            }
            return result
        self.start(protocol)
        result = self.resume()
        store.put(
            digest,
            result.to_dict(),  # type: ignore[attr-defined]
            key=key_doc,
            spec=spec.to_dict(),
            backend=spec.backend,
        )
        return result
