"""Population-level decision policies.

The scheduler originally consulted a per-agent *choice function*
(``ChoiceFn``: one Python call per agent per round).  A :class:`Policy`
decides for the whole population at once: :meth:`Policy.decide` receives
the full list of views and returns one :class:`~repro.types.LocalDirection`
per agent.  The scheduler makes exactly one ``decide`` call per round, so
a vectorised policy (e.g. one backed by precomputed direction arrays)
pays no per-agent Python dispatch on the hot path, and the direction
vector it returns is handed to the kinematics backend unchanged.

Anonymity contract: a policy must treat ``views`` as an anonymous
collection, exactly like the per-agent callbacks before it -- entry
``i`` of the returned list is the choice of the agent whose view sits at
index ``i``, and a policy must derive nothing from an agent's position
in the list.  :class:`PerAgentPolicy` adapts any existing choice
function; :func:`as_policy` coerces either form.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Sequence, Union

from repro.core.agent import AgentView
from repro.core.scheduler import ChoiceFn
from repro.exceptions import ProtocolError
from repro.ring.stretch import SpeculativeStretch, Stretch
from repro.types import LocalDirection, RoundOutcome

PolicyLike = Union["Policy", ChoiceFn]

__all__ = [
    "ChoiceFn",
    "FixedPolicy",
    "FunctionPolicy",
    "PerAgentPolicy",
    "Policy",
    "PolicyLike",
    "SpeculativeStretch",
    "Stretch",
    "VectorPolicy",
    "as_policy",
]


class Policy(ABC):
    """Decides one round's directions for the entire population.

    ``decide`` may alternatively return a
    :class:`~repro.ring.stretch.Stretch` -- a plan of several rounds
    whose vectors are known up front.  The scheduler executes the whole
    span in one backend call (fused on stretch-capable backends) and
    invokes ``observe_stretch`` (or replays ``observe`` round by round)
    with the span's columnar outcome.
    """

    @abstractmethod
    def decide(self, views: Sequence[AgentView]) -> List[LocalDirection]:
        """Return one local direction per agent, aligned with ``views``."""

    def observe(
        self, views: Sequence[AgentView], outcome: RoundOutcome
    ) -> None:
        """Population-level result hook, called by the scheduler exactly
        once after each round this policy decided.

        The default is a no-op.  Stateful policies (the native phase
        drivers in :mod:`repro.protocols.policies`) override it to post
        the round's observations back to the population's columns in
        one pass -- no per-agent dispatch.  ``outcome.observations`` is
        in view/slot order; the same list is available afterwards as
        ``scheduler.population.last_obs``.
        """


class PerAgentPolicy(Policy):
    """Adapter: lift a per-agent choice function to a whole-population
    policy.  Semantically identical to the scheduler's legacy per-agent
    loop (the equivalence is property-tested)."""

    __slots__ = ("choose",)

    def __init__(self, choose: ChoiceFn) -> None:
        self.choose = choose

    def decide(self, views: Sequence[AgentView]) -> List[LocalDirection]:
        choose = self.choose
        return [choose(view) for view in views]


class FixedPolicy(Policy):
    """Every agent plays the same local direction every round."""

    __slots__ = ("direction",)

    def __init__(self, direction: LocalDirection) -> None:
        self.direction = direction

    def decide(self, views: Sequence[AgentView]) -> List[LocalDirection]:
        return [self.direction] * len(views)


class VectorPolicy(Policy):
    """Play one precomputed direction vector (entry i for slot i).

    The building block of the native phase drivers: a driver computes a
    whole round's directions once, from columnar state, and hands the
    list to the scheduler unchanged.  The vector is *not* copied; the
    caller must not mutate it while the round is pending.
    """

    __slots__ = ("vector",)

    def __init__(self, vector: Sequence[LocalDirection]) -> None:
        self.vector = vector

    def decide(self, views: Sequence[AgentView]) -> List[LocalDirection]:
        return list(self.vector)


class FunctionPolicy(Policy):
    """Wrap a whole-population function ``views -> [direction, ...]``."""

    __slots__ = ("fn",)

    def __init__(
        self, fn: Callable[[Sequence[AgentView]], Sequence[LocalDirection]]
    ) -> None:
        self.fn = fn

    def decide(self, views: Sequence[AgentView]) -> List[LocalDirection]:
        return list(self.fn(views))


def as_policy(choose: PolicyLike) -> Policy:
    """Coerce a policy-like value: a :class:`Policy` passes through, a
    bare callable is wrapped in :class:`PerAgentPolicy`."""
    if isinstance(choose, Policy):
        return choose
    if callable(choose):
        return PerAgentPolicy(choose)
    raise ProtocolError(
        f"expected a Policy or a per-agent choice callable, got {choose!r}"
    )
