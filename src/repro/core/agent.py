"""The agent's-eye view of the world.

Protocols in this library are written against :class:`AgentView`, which
exposes exactly the knowledge the paper grants an agent:

* its own unique ID and the common bound N,
* whether the number of agents n is odd or even (but not n itself),
* the model variant in force,
* its own per-round observations (``dist()``, and ``coll()`` in the
  perceptive model).

Everything an agent computes is stored in :attr:`AgentView.memory`.
An agent has no access to its ring index, its chirality, other agents'
observations, or the world state; the scheduler enforces this by only
ever handing protocol callbacks the view object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, MutableMapping

from repro.exceptions import ProtocolError
from repro.types import Model, Observation


@dataclass
class AgentView:
    """Local knowledge and state of one agent.

    Attributes:
        agent_id: The agent's unique identifier in [1, N].
        id_bound: The common ID bound N (public knowledge).
        parity_even: Whether n is even -- per the paper, the only
            information about n available a priori.
        model: The model variant in force (public knowledge).
        memory: Scratch space for protocol state; protocols namespace
            their keys (e.g. ``"leader.status"``).  Under a scheduler
            this is a :class:`~repro.core.population.MemorySlot` over
            the shared columnar store (dict-compatible); a standalone
            view gets a plain dict.
        log: All observations this agent has received, in round order.
    """

    agent_id: int
    id_bound: int
    parity_even: bool
    model: Model
    memory: MutableMapping[str, Any] = field(default_factory=dict)
    log: List[Observation] = field(default_factory=list)

    @property
    def last(self) -> Observation:
        """The most recent observation (raises if no round has run)."""
        if not self.log:
            raise ProtocolError("no round has been observed yet")
        return self.log[-1]

    def id_bit(self, i: int) -> int:
        """The i-th bit of this agent's ID, i = 0 for the least
        significant; IDs fit in ``id_bits(N)`` bits."""
        return (self.agent_id >> i) & 1

    def rounds_seen(self) -> int:
        """Number of rounds this agent has lived through."""
        return len(self.log)


def id_bits(id_bound: int) -> int:
    """Number of bits needed to write any ID in [1, id_bound]."""
    return max(1, id_bound.bit_length())
