"""Columnar population state: one array per memory key, not one dict
per agent.

Historically every :class:`~repro.core.agent.AgentView` owned a private
``memory`` dict, so whole-population protocol steps paid one dict lookup
per agent per key per round.  :class:`Population` turns that layout on
its side: the scheduler owns a single store of *columns* -- for each
memory key, one list indexed by agent slot -- and each view's ``memory``
becomes a :class:`MemorySlot`, a thin mapping adapter that reads and
writes its own slot of the shared columns.  Per-agent protocol code is
unchanged; native whole-population policies
(:mod:`repro.protocols.policies`) bypass the adapter entirely and work
on the raw column lists.

The slot adapter preserves dict semantics exactly (``in``, ``get``,
``pop``, ``setdefault``, iteration over the keys *this* slot has set,
equality with plain dicts), so the columnar store is invisible to
legacy per-agent drivers -- which is what the native-vs-callback
equivalence tests rely on.

Information-flow note: a column holds only what the matching per-agent
dicts used to hold; the anonymity contract (nothing may be derived from
an agent's slot index) is unchanged and still rests on the protocols.
"""

from __future__ import annotations

from collections.abc import MutableMapping, Sequence as SequenceABC
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.types import Observation

#: Sentinel for "this slot has not set this key" (``None`` is a real,
#: storable value for several protocol keys, e.g. ``ringdist.label``).
MISSING = type("_Missing", (), {"__repr__": lambda self: "<missing>"})()


class LazyObsRow(SequenceABC):
    """One round's observations, materialised only when read.

    Wraps a stretch outcome (see :mod:`repro.ring.stretch`) and a round
    index; the per-agent :class:`~repro.types.Observation` tuple is
    built on first access and cached (on the stretch outcome, so rows
    shared between the history and ``last_obs`` materialise once).
    Restore rounds of a fused span are typically never read, so they
    never materialise at all.
    """

    __slots__ = ("_result", "_j")

    def __init__(self, result, j: int) -> None:
        self._result = result
        self._j = j

    def _cells(self):
        return self._result.observations(self._j)

    def __getitem__(self, index):
        return self._cells()[index]

    def __len__(self) -> int:
        return self._result.n

    def __iter__(self):
        return iter(self._cells())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (LazyObsRow, tuple, list)):
            return tuple(self._cells()) == tuple(other)
        return NotImplemented

    def __hash__(self):
        return hash(tuple(self._cells()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return repr(tuple(self._cells()))


class RoundHistory:
    """All executed rounds' observation rows, in round order.

    The scheduler appends one *row* (slot-indexed observation sequence)
    per executed round -- a materialised tuple on the scalar path, a
    :class:`LazyObsRow` for fused stretches.  Agent logs are
    per-slot column views over this store (:class:`AgentLog`), so
    recording a round is O(1) instead of one append per agent.
    """

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: List[Sequence[Observation]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def append(self, row: Sequence[Observation]) -> None:
        self._rows.append(row)

    def row(self, r: int) -> Sequence[Observation]:
        return self._rows[r]


class AgentLog(SequenceABC):
    """One agent's observation log: a slot column over the history.

    List-compatible for everything protocols and tests do with logs
    (indexing, iteration, ``len``, equality with lists); reading an
    entry of a fused-stretch round materialises that round's row once,
    shared across all agents.
    """

    __slots__ = ("_history", "_slot")

    def __init__(self, history: RoundHistory, slot: int) -> None:
        self._history = history
        self._slot = slot

    def __len__(self) -> int:
        return len(self._history)

    def __getitem__(self, index):
        rows = self._history._rows
        if isinstance(index, slice):
            return [row[self._slot] for row in rows[index]]
        return rows[index][self._slot]

    def __iter__(self):
        slot = self._slot
        for row in self._history._rows:
            yield row[slot]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (AgentLog, list, tuple)):
            if len(self) != len(other):
                return False
            return all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return repr(list(self))


class Population:
    """Columnar store of all agents' protocol memory plus the latest
    round's observations.

    Attributes:
        n: Number of agents (column length).
        ids: Agent IDs in view order (the same values each view exposes
            as ``agent_id``; kept here so native policies can build
            whole direction vectors without touching views).
        id_bound: The common ID bound N.
        parity_even: The public parity bit.
        last_obs: The most recent round's observations in slot order, or
            ``None`` before the first round.  Updated by the scheduler
            after every executed round; native policies read their
            ``dist``/``coll`` columns from it.
    """

    __slots__ = ("n", "ids", "id_bound", "parity_even", "_columns",
                 "last_obs", "history")

    def __init__(
        self,
        n: int,
        ids: Sequence[int],
        id_bound: int,
        parity_even: bool,
    ) -> None:
        if len(ids) != n:
            raise ValueError(f"{len(ids)} ids for {n} slots")
        self.n = n
        self.ids: List[int] = list(ids)
        self.id_bound = id_bound
        self.parity_even = parity_even
        self._columns: Dict[str, List[Any]] = {}
        self.last_obs: Optional[Sequence[Observation]] = None
        self.history = RoundHistory()

    # -- scheduler interface --------------------------------------------

    def slot(self, index: int) -> "MemorySlot":
        """The per-agent mapping adapter for slot ``index``."""
        if not 0 <= index < self.n:
            raise IndexError(f"slot {index} out of range for n={self.n}")
        return MemorySlot(self, index)

    def log_view(self, index: int) -> AgentLog:
        """The per-agent log view for slot ``index``."""
        return AgentLog(self.history, index)

    def observe(self, observations: Sequence[Observation]) -> None:
        """Record the latest round's observations (slot order)."""
        self.last_obs = observations

    def record_round(self, observations: Sequence[Observation]) -> None:
        """File one executed round: history row plus ``last_obs``."""
        self.history.append(observations)
        self.last_obs = observations

    def record_stretch(self, result) -> None:
        """File a fused stretch: one lazy history row per round."""
        history = self.history
        row = None
        for j in range(result.k):
            row = LazyObsRow(result, j)
            history.append(row)
        if row is not None:
            self.last_obs = row

    # -- column interface (native policies) -----------------------------

    def column(self, key: str) -> List[Any]:
        """The raw column for ``key`` (shared, mutable; cells may be
        :data:`MISSING`).  Raises ``KeyError`` if no slot ever set it."""
        return self._columns[key]

    def get_column(self, key: str, default: Any = None) -> Optional[List[Any]]:
        """The raw column for ``key``, or ``default`` if absent."""
        return self._columns.get(key, default)

    def column_ints(self, key: str) -> List[int]:
        """The column for ``key``, checked to hold plain ints only.

        The zero-copy seam of :mod:`repro.parallel.shm` exists for
        integer columns exclusively -- this is the validated read it
        builds shared-memory mirrors from.  Raises ``TypeError`` on
        the first non-int cell (bools and :data:`MISSING` included:
        neither has an int64 shared-memory representation).
        """
        cells = self._columns[key]
        for slot, cell in enumerate(cells):
            if not isinstance(cell, int) or isinstance(cell, bool):
                raise TypeError(
                    f"population column {key!r} slot {slot} holds "
                    f"{type(cell).__name__}, not int; only integer "
                    "columns can be mirrored into shared memory"
                )
        return cells

    def set_column(self, key: str, values: Sequence[Any]) -> List[Any]:
        """Replace the whole column for ``key`` with ``values``."""
        values = list(values)
        if len(values) != self.n:
            raise ValueError(
                f"column {key!r}: {len(values)} values for {self.n} slots"
            )
        self._columns[key] = values
        return values

    def fill(self, key: str, value: Any) -> List[Any]:
        """Set every slot of ``key`` to the same (immutable) value."""
        column = [value] * self.n
        self._columns[key] = column
        return column

    def fill_with(self, key: str, factory: Callable[[], Any]) -> List[Any]:
        """Set every slot of ``key`` to a fresh ``factory()`` value (for
        mutable cells such as per-agent accumulator lists)."""
        column = [factory() for _ in range(self.n)]
        self._columns[key] = column
        return column

    def drop(self, key: str) -> None:
        """Remove a column entirely (missing key is a no-op)."""
        self._columns.pop(key, None)

    def has_column(self, key: str) -> bool:
        """Whether any slot has ever set ``key``."""
        return key in self._columns

    def all_set(self, key: str) -> bool:
        """Whether *every* slot currently holds a value for ``key``."""
        column = self._columns.get(key)
        if column is None:
            return False
        return all(cell is not MISSING for cell in column)

    def first_unset(self, key: str) -> Optional[int]:
        """The lowest slot index missing ``key``, or None if all set
        (used to mirror legacy per-agent precondition error messages)."""
        column = self._columns.get(key)
        if column is None:
            return 0 if self.n else None
        for i, cell in enumerate(column):
            if cell is MISSING:
                return i
        return None


class MemorySlot(MutableMapping):
    """Dict-compatible view of one agent's slot across all columns.

    ``memory[key]`` reads ``population.column(key)[slot]``; setting a
    key creates the column on demand.  Iteration yields only the keys
    this slot has actually set, so ``dict(view.memory)`` looks exactly
    like the per-agent dict it replaces.
    """

    __slots__ = ("_population", "_slot")

    def __init__(self, population: Population, slot: int) -> None:
        self._population = population
        self._slot = slot

    def __getitem__(self, key: str) -> Any:
        column = self._population._columns.get(key)
        if column is None:
            raise KeyError(key)
        value = column[self._slot]
        if value is MISSING:
            raise KeyError(key)
        return value

    def __setitem__(self, key: str, value: Any) -> None:
        population = self._population
        column = population._columns.get(key)
        if column is None:
            column = population._columns[key] = [MISSING] * population.n
        column[self._slot] = value

    def __delitem__(self, key: str) -> None:
        column = self._population._columns.get(key)
        if column is None or column[self._slot] is MISSING:
            raise KeyError(key)
        column[self._slot] = MISSING

    def __iter__(self) -> Iterator[str]:
        slot = self._slot
        for key, column in self._population._columns.items():
            if column[slot] is not MISSING:
                yield key

    def __len__(self) -> int:
        slot = self._slot
        return sum(
            1
            for column in self._population._columns.values()
            if column[slot] is not MISSING
        )

    def __contains__(self, key: object) -> bool:
        column = self._population._columns.get(key)
        return column is not None and column[self._slot] is not MISSING

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MemorySlot):
            return dict(self) == dict(other)
        if isinstance(other, dict):
            return dict(self) == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return repr(dict(self))
