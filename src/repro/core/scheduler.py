"""The synchronous round scheduler.

The scheduler owns the boundary between world state and agent knowledge.
Each round it asks the protocol for every agent's local direction and
executes the round on the simulator, appending each agent's observation
to its private log.  Two protocol shapes are accepted everywhere a
decision is needed:

* a per-agent *choice function* (``ChoiceFn``), called once per agent
  with only that agent's :class:`~repro.core.agent.AgentView`;
* a whole-population :class:`~repro.api.policy.Policy`, whose
  ``decide(views)`` is called exactly once per round and returns the
  full direction vector -- the vectorised path: no per-agent Python
  dispatch, and the returned vector flows to the kinematics backend
  unchanged.

Round counting happens here, so every protocol's cost is measured
uniformly, matching the paper's complexity metric.

Batched execution: :meth:`Scheduler.run_rounds` executes ``k``
choice-driven rounds and :meth:`Scheduler.run_fixed` executes ``k``
rounds of one fixed direction.  The fixed variant validates the round
and maps chiralities once for the whole batch; both lean on the
kinematics backend's memoised per-velocity-pattern tables (see
:mod:`repro.ring.backends`), so long homogeneous stretches -- sweeps,
probes, restore sequences -- execute without re-deriving anything.

Fused stretches: a policy's ``decide`` may return a whole
:class:`~repro.ring.stretch.Stretch` plan instead of one vector; the
scheduler executes the span through the backend in a single call
(closed-form and columnar on ``backend="array"``), files one *lazy*
history row per round -- agent logs materialise observations only when
read -- and notifies the policy once via ``observe_stretch``.
``run_fixed`` routes through the same path on stretch-capable
backends.  Backend selection
(``backend="lattice"|"fraction"|"array"``) threads through to
:class:`~repro.ring.simulator.RingSimulator`.

Speculative stretches: data-dependent phases (the location-discovery
sweeps, the Convolution/Pivot schedule) plan a
:class:`~repro.ring.stretch.SpeculativeStretch` -- an optimistic span
plus a per-round stop predicate over the observation columns -- via
:meth:`Scheduler.run_stretch`; stretch-capable backends advance the
whole span and cut the commit back to the predicate's firing round
(a rotation-offset rewind), scalar backends interleave execute and
evaluate.  ``unchecked=True`` additionally lets native drivers skip
the provably-restoring rounds of probe/restore pairs entirely
(:meth:`Scheduler.skip_restoring`): final positions and protocol
results are unchanged, but the skipped rounds appear in neither the
round count nor the logs -- an explicit opt-in trade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.agent import AgentView
from repro.core.population import Population
from repro.exceptions import FaultBudgetError, SimulationError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, FaultPlanLike
from repro.ring.backends import BackendSpec
from repro.ring.simulator import RingSimulator
from repro.ring.state import RingState
from repro.ring.stretch import (
    MaterialisedStretch,
    SpeculativeStretch,
    Stretch,
    row_directions,
)
from repro.types import LocalDirection, Model, RoundOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only (no runtime cycle)
    from repro.api.policy import PolicyLike

#: The canonical per-agent choice-function alias (re-exported by
#: :mod:`repro.api.policy`, which also defines the PolicyLike union).
ChoiceFn = Callable[[AgentView], LocalDirection]


class Scheduler:
    """Drives synchronous rounds and mediates all agent information flow.

    Attributes:
        simulator: The underlying round simulator (owns the world state).
        population: The columnar store of all agents' protocol memory
            (:class:`~repro.core.population.Population`); each view's
            ``memory`` is a per-slot adapter over it, and native
            whole-population policies read/write its columns directly.
            After every executed round ``population.last_obs`` holds the
            round's observations in slot order.
        views: One :class:`AgentView` per agent, in ring order.  The
            ordering is a harness artifact: protocol code must treat the
            list as an anonymous collection and derive nothing from an
            agent's position in it.
    """

    def __init__(
        self,
        state: RingState,
        model: Model = Model.BASIC,
        cross_validate: bool = False,
        backend: BackendSpec = None,
        unchecked: bool = False,
        faults: FaultPlanLike = None,
    ) -> None:
        self.simulator = RingSimulator(
            state, model, cross_validate, backend=backend
        )
        self.model = model
        # Adversarial execution (repro.faults): an active plan routes
        # every round through FaultInjector.transform, disables fused
        # stretch execution (injection is per-round by nature) and the
        # unchecked restore-skip (skipped rounds would dodge the
        # adversary), and enforces the plan's round budget.
        self.faults: Optional[FaultPlan] = FaultPlan.coerce(faults)
        if self.faults is not None:
            self._injector: Optional[FaultInjector] = FaultInjector(
                self.faults, state.n
            )
            self.simulator.idle_exempt = self._injector.idle_exempt
            self._round_budget = self.faults.round_budget
            unchecked = False
        else:
            self._injector = None
        # Opt-in fast mode: native phase drivers skip the provably
        # restoring rounds of probe/restore pairs (positions advance by
        # the span's net rotation instead of being simulated).  Protocol
        # outcomes and final positions are unchanged; round counts and
        # logs are not -- see Scheduler.skip_restoring.  Cross-validated
        # runs never skip (there would be nothing to validate).
        self.unchecked = bool(unchecked) and not cross_validate
        self.population = Population(
            n=state.n,
            ids=state.ids,
            id_bound=state.id_bound,
            parity_even=state.parity_even,
        )
        self.views: List[AgentView] = [
            AgentView(
                agent_id=state.ids[i],
                id_bound=state.id_bound,
                parity_even=state.parity_even,
                model=model,
                memory=self.population.slot(i),
                log=self.population.log_view(i),
            )
            for i in range(state.n)
        ]

    @property
    def state(self) -> RingState:
        """The ground-truth world state (tests/benchmarks only --
        protocol code must never read this)."""
        return self.simulator.state

    @property
    def rounds(self) -> int:
        """Rounds executed so far (the paper's cost measure)."""
        return self.simulator.rounds_executed

    @property
    def supports_stretch(self) -> bool:
        """Whether the backend executes fused stretches natively.

        Always False under an active fault plan: injection rewrites the
        direction vector round by round, so spans cannot be handed to
        the backend whole.  Policies then plan their scalar/legacy
        paths; scheduler-level stretch entry points execute round by
        round through the injector.
        """
        if self._injector is not None:
            return False
        return getattr(self.simulator.backend, "supports_stretch", False)

    @property
    def array_module(self):
        """The numpy module when the backend exposes vectorised stretch
        columns through it, else None.  Native policies key their
        internal representation (sign rows, integer columns) off this.

        None also when the backend cannot fuse with int64 columns (a
        shared denominator past 2^61): policies then keep their exact
        legacy plans instead of building integer mirrors that would
        collide with sentinels or overflow int64.
        """
        if not self.supports_stretch:
            return None
        backend = self.simulator.backend
        if not getattr(backend, "_fusable", False):
            return None
        return getattr(backend, "np", None)

    def _decide(self, choose: PolicyLike):
        """One round's direction vector from a policy or a choice fn.

        A :class:`~repro.api.policy.Policy` (recognised structurally via
        its ``decide`` attribute, so this module never imports the api
        package) is consulted once for the whole population; a bare
        callable is consulted once per agent.  A policy may return a
        :class:`~repro.ring.stretch.Stretch` plan instead of a single
        vector; it is passed through for :meth:`run_round` to execute
        as a fused span.
        """
        decide = getattr(choose, "decide", None)
        if decide is None:
            return [choose(view) for view in self.views]
        directions = decide(self.views)
        if isinstance(directions, Stretch):
            return directions
        directions = list(directions)
        if len(directions) != len(self.views):
            raise SimulationError(
                f"policy returned {len(directions)} directions for "
                f"{len(self.views)} agents"
            )
        return directions

    def run_round(self, choose: PolicyLike) -> RoundOutcome:
        """Execute one round.

        Args:
            choose: Either a per-agent choice function (called once per
                agent with only that agent's view) or a whole-population
                :class:`~repro.api.policy.Policy` (its ``decide`` is
                called exactly once with all views).

        Returns:
            The omniscient outcome (for tests); each agent's observation
            has already been appended to its own log.  If the policy
            defines an ``observe`` hook it is called once with
            ``(views, outcome)`` after the logs are updated, so native
            policies can post population-level results back to columns
            without per-agent dispatch.
        """
        decision = self._decide(choose)
        if isinstance(decision, Stretch):
            return self._run_stretch(choose, decision)
        outcome = self._execute_round(decision)
        self.population.record_round(outcome.observations)
        observe = getattr(choose, "observe", None)
        if observe is not None:
            observe(self.views, outcome)
        return outcome

    def _execute_round(
        self, directions: List[LocalDirection]
    ) -> RoundOutcome:
        """Execute one direction vector, through the adversary if active.

        The single seam every scheduler-driven round passes through
        under an active fault plan: the injector rewrites the vector
        (delays, Byzantine corruption, crash-stop) and the plan's round
        budget is enforced before the simulator runs.
        """
        injector = self._injector
        if injector is not None:
            if self.simulator.rounds_executed >= self._round_budget:
                raise FaultBudgetError(
                    f"fault-injected run exceeded its "
                    f"{self._round_budget}-round budget"
                )
            directions = injector.transform(
                directions,
                self.simulator.rounds_executed,
                [view.memory for view in self.views],
            )
        return self.simulator.execute(directions)

    def crashed_slots(self) -> frozenset:
        """Slots already crash-stopped at the current round (empty when
        no fault plan is active).  Contention protocols consult this to
        model a crashed transmitter falling silent."""
        if self._injector is None:
            return frozenset()
        return self._injector.crashed_at(self.simulator.rounds_executed)

    def _run_stretch(self, choose: PolicyLike, stretch: Stretch):
        """Execute a fused span a policy returned from ``decide``.

        The span's rounds are filed in the history as lazy rows (agent
        logs materialise them only when read).  A policy defining
        ``observe_stretch`` gets the whole stretch outcome in one call;
        otherwise its per-round ``observe`` hook is replayed round by
        round with materialised outcomes.  Returns the stretch outcome.
        """
        result = self.run_stretch(stretch)
        observe_stretch = getattr(choose, "observe_stretch", None)
        if observe_stretch is not None:
            observe_stretch(self.views, result)
        else:
            observe = getattr(choose, "observe", None)
            if observe is not None:
                for j in range(result.k):
                    observe(self.views, result.outcome(j))
        return result

    def run_stretch(self, stretch: Stretch):
        """Execute a stretch plan directly (no policy dispatch).

        The entry point for phase drivers that build their own spans --
        the speculative sweeps and the Convolution/Pivot schedule hand
        a :class:`~repro.ring.stretch.SpeculativeStretch` here and read
        the committed rounds off the returned outcome (``result.k``;
        for a speculative plan that is the stop predicate's firing
        round, not the planned upper bound).  Every committed round is
        filed in the history as a lazy row, exactly as policy-returned
        stretches are.

        Under an active fault plan the span is unrolled and executed
        round by round through the injector (observations recorded
        eagerly); the stop predicate of a speculative plan is evaluated
        after each executed round, as on scalar backends.
        """
        if self._injector is None:
            result = self.simulator.execute_stretch(stretch)
            self.population.record_stretch(result)
            return result
        stop = (
            stretch.stop
            if isinstance(stretch, SpeculativeStretch)
            else None
        )
        outcomes = MaterialisedStretch()
        population = self.population
        j = 0
        for row, count in stretch.pairs:
            directions = row_directions(row)
            for _ in range(count):
                outcome = self._execute_round(list(directions))
                outcomes.append(outcome)
                population.record_round(outcome.observations)
                if stop is not None and stop(outcomes, j):
                    return outcomes
                j += 1
        return outcomes

    def skip_restoring(self, row, k: int = 1) -> None:
        """Apply ``k`` provably-restoring rounds of ``row`` unsimulated.

        The ``unchecked`` fast path for restore steps: the span's net
        rotation is committed directly (Lemma 1 -- a round's entire
        effect on the world is a rotation), no rounds are counted, no
        observations are filed.  Only ever routed here by native phase
        drivers for REVERSEDROUND spans whose observations are provably
        never read; :attr:`unchecked` must be on.
        """
        self.simulator.apply_restoring_span(row, k)

    def run_rounds(self, choose: PolicyLike, k: int) -> List[RoundOutcome]:
        """Execute at least ``k`` policy- or choice-driven rounds;
        returns one :class:`RoundOutcome` per executed round.

        The policy is re-consulted every round (protocol state may
        change), but repeated direction patterns hit the backend's
        memoised tables, so homogeneous stretches run at batched speed.
        A policy that returns a fused :class:`~repro.ring.stretch.
        Stretch` from ``decide`` contributes all of that span's rounds
        (materialised here); a stretch straddling the ``k``-th round is
        executed whole, so the result may hold more than ``k`` entries.
        """
        outcomes: List[RoundOutcome] = []
        while len(outcomes) < k:
            result = self.run_round(choose)
            if isinstance(result, RoundOutcome):
                outcomes.append(result)
            else:
                outcomes.extend(
                    result.outcome(j) for j in range(result.k)
                )
        return outcomes

    def run_fixed(
        self, direction: LocalDirection, k: int = 1
    ) -> RoundOutcome:
        """Every agent plays the same local direction for ``k`` rounds.

        Validation and chirality mapping happen once for the whole
        batch.  Returns the outcome of the *last* round (all rounds'
        observations are appended to the agent logs).
        """
        if k < 1:
            raise ValueError("run_fixed requires k >= 1")
        directions = [direction] * self.state.n
        if self._injector is not None:
            population = self.population
            for _ in range(k):
                outcome = self._execute_round(list(directions))
                population.record_round(outcome.observations)
            return outcome
        if self.supports_stretch and not self.simulator.cross_validate:
            result = self.simulator.execute_stretch(
                Stretch(directions, k)
            )
            self.population.record_stretch(result)
            return result.outcome(result.k - 1)
        outcomes = self.simulator.execute_batch(directions, k)
        population = self.population
        for outcome in outcomes:
            population.record_round(outcome.observations)
        return outcomes[-1]

    def for_each_agent(self, fn: Callable[[AgentView], None]) -> None:
        """Run a local computation step on every agent."""
        for view in self.views:
            fn(view)

    def unanimous_memory(self, key: str) -> Optional[object]:
        """Return ``memory[key]`` iff all agents agree on it, else None.

        A *test* convenience for protocols whose outputs must be
        consensus values (e.g. the outcome of an emptiness test).
        Agreement is decided by value equality (``==``) -- not by
        comparing ``repr()`` strings, which conflates distinct values
        with identical printouts and splits equal values with unstable
        printouts (e.g. dict ordering).
        """
        values = [view.memory.get(key) for view in self.views]
        first = values[0]
        for value in values[1:]:
            if not (value == first):
                return None
        return first
