"""The synchronous round scheduler.

The scheduler owns the boundary between world state and agent knowledge.
Each round it asks a protocol-supplied *choice function* for every
agent's local direction -- passing only that agent's
:class:`~repro.core.agent.AgentView` -- executes the round on the
simulator, and appends each agent's observation to its private log.

Round counting happens here, so every protocol's cost is measured
uniformly, matching the paper's complexity metric.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.agent import AgentView
from repro.ring.simulator import RingSimulator
from repro.ring.state import RingState
from repro.types import LocalDirection, Model, RoundOutcome

ChoiceFn = Callable[[AgentView], LocalDirection]


class Scheduler:
    """Drives synchronous rounds and mediates all agent information flow.

    Attributes:
        simulator: The underlying round simulator (owns the world state).
        views: One :class:`AgentView` per agent, in ring order.  The
            ordering is a harness artifact: protocol code must treat the
            list as an anonymous collection and derive nothing from an
            agent's position in it.
    """

    def __init__(
        self,
        state: RingState,
        model: Model = Model.BASIC,
        cross_validate: bool = False,
    ) -> None:
        self.simulator = RingSimulator(state, model, cross_validate)
        self.model = model
        self.views: List[AgentView] = [
            AgentView(
                agent_id=state.ids[i],
                id_bound=state.id_bound,
                parity_even=state.parity_even,
                model=model,
            )
            for i in range(state.n)
        ]

    @property
    def state(self) -> RingState:
        """The ground-truth world state (tests/benchmarks only --
        protocol code must never read this)."""
        return self.simulator.state

    @property
    def rounds(self) -> int:
        """Rounds executed so far (the paper's cost measure)."""
        return self.simulator.rounds_executed

    def run_round(self, choose: ChoiceFn) -> RoundOutcome:
        """Execute one round.

        Args:
            choose: Maps an agent's view to its local direction for this
                round.  Called once per agent with only that agent's view.

        Returns:
            The omniscient outcome (for tests); each agent's observation
            has already been appended to its own log.
        """
        directions = [choose(view) for view in self.views]
        outcome = self.simulator.execute(directions)
        for view, obs in zip(self.views, outcome.observations):
            view.log.append(obs)
        return outcome

    def run_fixed(self, direction: LocalDirection) -> RoundOutcome:
        """Every agent plays the same local direction."""
        return self.run_round(lambda view: direction)

    def for_each_agent(self, fn: Callable[[AgentView], None]) -> None:
        """Run a local computation step on every agent."""
        for view in self.views:
            fn(view)

    def unanimous_memory(self, key: str) -> Optional[object]:
        """Assert all agents agree on ``memory[key]`` and return the value.

        A *test* convenience for protocols whose outputs must be
        consensus values (e.g. the outcome of an emptiness test).
        """
        values = {repr(view.memory.get(key)) for view in self.views}
        if len(values) != 1:
            return None
        return self.views[0].memory.get(key)
