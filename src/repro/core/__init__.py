"""Agent-side framework: views, scheduler, round helpers."""

from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.core.rounds import single_round, reversed_round, run_marked_sequence

__all__ = [
    "AgentView",
    "Scheduler",
    "single_round",
    "reversed_round",
    "run_marked_sequence",
]
