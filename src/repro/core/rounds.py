"""SINGLEROUND / REVERSEDROUND helpers and marked-set sequences.

The paper's pseudocode assigns each agent a local variable ``dir`` and
then runs SINGLEROUND (everyone moves per its ``dir``) or REVERSEDROUND
(everyone moves opposite its ``dir``).  A SINGLEROUND immediately
followed by its REVERSEDROUND returns every agent to its starting
position, because reversing all velocities replays the round backwards.

This module provides those helpers over agent memory, plus the
"execute a sequence of sets S on marked agents" primitive from
Section I-B: in round i the marked agents whose ID is in ``S_i`` move
right, marked agents outside ``S_i`` move left, and unmarked agents all
move right.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.core.agent import AgentView
from repro.core.scheduler import Scheduler
from repro.types import LocalDirection, RoundOutcome

DIR_KEY = "core.dir"


def set_direction(view: AgentView, direction: LocalDirection) -> None:
    """Assign the agent's local ``dir`` variable."""
    view.memory[DIR_KEY] = direction


def get_direction(view: AgentView) -> LocalDirection:
    """Read the agent's local ``dir`` variable (defaults to RIGHT)."""
    return view.memory.get(DIR_KEY, LocalDirection.RIGHT)


def single_round(sched: Scheduler) -> RoundOutcome:
    """SINGLEROUND: every agent moves per its stored ``dir``."""
    return sched.run_round(get_direction)


def reversed_round(sched: Scheduler) -> RoundOutcome:
    """REVERSEDROUND: every agent moves opposite its stored ``dir``.

    After ``single_round`` + ``reversed_round`` with unchanged ``dir``
    values, every agent is back at its pre-pair position.
    """
    return sched.run_round(lambda view: get_direction(view).opposite())


def run_set_round(
    sched: Scheduler,
    members: Set[int],
    member_dir: LocalDirection = LocalDirection.RIGHT,
) -> RoundOutcome:
    """One round where agents with ID in ``members`` move ``member_dir``
    and everyone else moves the opposite direction.

    This realises the rotation-index probe RI(B) of Section II: with
    common chirality the round's rotation index is ``2|B ∩ A| mod n``.
    """
    other = member_dir.opposite()

    def choose(view: AgentView) -> LocalDirection:
        return member_dir if view.agent_id in members else other

    return sched.run_round(choose)


def run_marked_sequence(
    sched: Scheduler,
    sets: Sequence[Iterable[int]],
    is_marked: Callable[[AgentView], bool],
    stop: Optional[Callable[[RoundOutcome], bool]] = None,
) -> List[RoundOutcome]:
    """Execute a sequence of ID sets on the marked agents (Section I-B).

    In round i, a marked agent moves RIGHT iff its ID is in ``sets[i]``
    (else LEFT); every unmarked agent moves RIGHT.

    Args:
        stop: Optional early-exit predicate evaluated on each outcome;
            when it returns True the sequence stops after that round.

    Returns:
        The outcomes of the executed prefix.
    """
    outcomes: List[RoundOutcome] = []
    for s in sets:
        s_set = set(s)

        def choose(view: AgentView) -> LocalDirection:
            if not is_marked(view):
                return LocalDirection.RIGHT
            return (
                LocalDirection.RIGHT
                if view.agent_id in s_set
                else LocalDirection.LEFT
            )

        outcome = sched.run_round(choose)
        outcomes.append(outcome)
        if stop is not None and stop(outcome):
            break
    return outcomes
