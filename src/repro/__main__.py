"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro table1 [--odd 9,17,33] [--even 8,16,32] [--seed 1]
    python -m repro table2
    python -m repro figures
    python -m repro lower-bounds
    python -m repro demo [--n 8] [--model perceptive] [--seed 2024]
                         [--backend lattice|fraction]
    python -m repro bench [--n 64] [--rounds 256] [--out BENCH.json]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _sizes(spec: str) -> List[int]:
    return [int(part) for part in spec.split(",") if part]


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.experiments import render_table
    from repro.experiments.table1 import generate

    rows = generate(
        odd_sizes=tuple(_sizes(args.odd)),
        even_sizes=tuple(_sizes(args.even)),
        seed=args.seed,
    )
    print(render_table(rows, "TABLE I -- deterministic solutions, general setting"))


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.experiments import render_table
    from repro.experiments.table2 import generate

    rows = generate(
        odd_sizes=tuple(_sizes(args.odd)),
        even_sizes=tuple(_sizes(args.even)),
        seed=args.seed,
    )
    print(render_table(rows, "TABLE II -- common sense of direction"))


def _cmd_figures(args: argparse.Namespace) -> None:
    from repro.experiments import render_table
    from repro.experiments.figures import reduction_edges, ringdist_anatomy

    print(render_table(
        reduction_edges(n=args.n, seed=args.seed),
        "FIGURES 1-2 -- reduction edges",
    ))
    print()
    print(render_table(
        ringdist_anatomy(n=args.n, seed=args.seed),
        "FIGURE 3 -- RingDist labelling progress",
    ))


def _cmd_lower_bounds(args: argparse.Namespace) -> None:
    from repro.experiments import render_table
    from repro.experiments.lower_bounds import (
        distinguisher_sizes,
        lemma5_witness,
        lemma6_floors,
    )

    print(render_table([lemma5_witness(8)], "LEMMA 5 -- parity witness"))
    print()
    print(render_table(lemma6_floors(args.seed), "LEMMA 6 -- LD floors"))
    print()
    print(render_table(distinguisher_sizes(), "COR 29 -- distinguisher sizes"))


def _cmd_demo(args: argparse.Namespace) -> None:
    from repro import Model, random_configuration, solve_location_discovery

    model = Model(args.model)
    state = random_configuration(n=args.n, seed=args.seed, common_sense=False)
    print(f"n={args.n}, model={model.value}, N={state.id_bound}, "
          f"backend={args.backend}")
    result = solve_location_discovery(state, model, backend=args.backend)
    print(f"location discovery solved in {result.rounds} rounds:")
    for phase, rounds in result.rounds_by_phase.items():
        print(f"  {phase:22s} {rounds:6d}")
    print("agent 0's reconstructed gaps:", result.gaps_by_agent[0])


def _cmd_bench(args: argparse.Namespace) -> None:
    import json

    from repro.experiments.harness import backend_shootout

    report = backend_shootout(
        n=args.n, rounds=args.rounds, seed=args.seed, repeats=args.repeats
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Deterministic Symmetry Breaking in "
        "Ring Networks' (ICDCS 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate Table I")
    t1.add_argument("--odd", default="9,17,33")
    t1.add_argument("--even", default="8,16,32")
    t1.add_argument("--seed", type=int, default=1)
    t1.set_defaults(fn=_cmd_table1)

    t2 = sub.add_parser("table2", help="regenerate Table II")
    t2.add_argument("--odd", default="9,17")
    t2.add_argument("--even", default="8,16")
    t2.add_argument("--seed", type=int, default=1)
    t2.set_defaults(fn=_cmd_table2)

    figs = sub.add_parser("figures", help="regenerate Figures 1-3 data")
    figs.add_argument("--n", type=int, default=24)
    figs.add_argument("--seed", type=int, default=1)
    figs.set_defaults(fn=_cmd_figures)

    lb = sub.add_parser("lower-bounds", help="Lemmas 5-6 and Cor 29")
    lb.add_argument("--seed", type=int, default=1)
    lb.set_defaults(fn=_cmd_lower_bounds)

    demo = sub.add_parser("demo", help="solve one ring end to end")
    demo.add_argument("--n", type=int, default=8)
    demo.add_argument(
        "--model", default="perceptive",
        choices=["basic", "lazy", "perceptive"],
    )
    demo.add_argument("--seed", type=int, default=2024)
    demo.add_argument(
        "--backend", default="lattice", choices=["lattice", "fraction"],
        help="kinematics backend for the simulation",
    )
    demo.set_defaults(fn=_cmd_demo)

    bench = sub.add_parser(
        "bench", help="time the kinematics backends against each other"
    )
    bench.add_argument("--n", type=int, default=64)
    bench.add_argument("--rounds", type=int, default=256)
    bench.add_argument("--seed", type=int, default=11)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    bench.set_defaults(fn=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
