"""Command-line interface: run protocols, sweep fleets, and regenerate
the paper's tables and figures.

Usage::

    python -m repro run [coordination|location-discovery] [--n 8]
                        [--model perceptive] [--seed 2024]
                        [--backend lattice|fraction|array]
                        [--shard 4] [--common-sense]
                        [--driver native|callback]
                        [--unchecked] [--json]
                        [--cache|--no-cache] [--cache-dir DIR]
                        [--faults PLAN|@file.json]
    python -m repro sweep [--protocol location-discovery]
                          [--sizes 8,16] [--seeds 0,1,2,3]
                          [--models perceptive] [--backends lattice]
                          [--driver native|callback] [--workers 4]
                          [--executor process] [--out X.json]
                          [--cache|--no-cache] [--cache-dir DIR]
                          [--faults PLAN|@file.json]
    python -m repro cache stats|verify|clear [--cache-dir DIR]
                                             [--sample N]
    python -m repro table1 [--odd 9,17,33] [--even 8,16,32] [--seed 1]
                           [--backend lattice|fraction] [--json]
    python -m repro table2 [--backend ...] [--json]
    python -m repro figures [--backend ...] [--json]
    python -m repro lower-bounds [--backend ...] [--json]
    python -m repro demo [--n 8] [--model perceptive] [--seed 2024]
                         [--backend lattice|fraction]
    python -m repro bench [--n 64] [--rounds 256] [--out BENCH.json]
    python -m repro bench-policies [--sizes 64,256,1024]
                                   [--out BENCH.json]
    python -m repro bench-array [--sizes 1024,4096,16384]
                                [--out BENCH.json]
    python -m repro bench-speculative [--sizes 256,1024]
                                      [--distances-n 48] [--out BENCH.json]
    python -m repro bench-equations [--distances-sizes 24,48,96]
                                    [--sweep-sizes 256,1024]
                                    [--out BENCH.json]
    python -m repro bench-fleet [--sessions 16] [--n 24] [--workers 4]
                                [--repeats 3] [--out BENCH.json]
    python -m repro bench-shard [--sizes 65536,262144,1048576]
                                [--shards 4] [--rounds 48]
                                [--out BENCH.json]
    python -m repro bench-cache [--sessions 8] [--n 16] [--dupes 4]
                                [--out BENCH.json]

``run`` with no protocol lists the registry.  All structured output
(``--json``, ``sweep``) uses exact ``"p/q"`` strings for rationals.
``--cache`` (or ``REPRO_CACHE=1``) serves repeated runs from the
content-addressed run store; fetched results are bit-identical to
computed ones.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _sizes(spec: str) -> List[int]:
    return [int(part) for part in spec.split(",") if part]


def _names(spec: str) -> List[str]:
    return [part.strip() for part in spec.split(",") if part.strip()]


def _emit_rows(args: argparse.Namespace, rows, title: str) -> None:
    """Render experiment rows as a text table or, with --json, as JSON."""
    if getattr(args, "json", False):
        print(json.dumps(
            {"title": title, "rows": [r.to_dict() for r in rows]},
            indent=2,
        ))
    else:
        from repro.experiments import render_table

        print(render_table(rows, title))


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.experiments.table1 import generate

    rows = generate(
        odd_sizes=tuple(_sizes(args.odd)),
        even_sizes=tuple(_sizes(args.even)),
        seed=args.seed,
        backend=args.backend,
    )
    _emit_rows(args, rows,
               "TABLE I -- deterministic solutions, general setting")


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.experiments.table2 import generate

    rows = generate(
        odd_sizes=tuple(_sizes(args.odd)),
        even_sizes=tuple(_sizes(args.even)),
        seed=args.seed,
        backend=args.backend,
    )
    _emit_rows(args, rows, "TABLE II -- common sense of direction")


def _cmd_figures(args: argparse.Namespace) -> None:
    from repro.experiments.figures import reduction_edges, ringdist_anatomy

    edges = reduction_edges(n=args.n, seed=args.seed, backend=args.backend)
    anatomy = ringdist_anatomy(n=args.n, seed=args.seed,
                               backend=args.backend)
    if args.json:
        print(json.dumps({
            "figures_1_2": [r.to_dict() for r in edges],
            "figure_3": [r.to_dict() for r in anatomy],
        }, indent=2))
        return
    from repro.experiments import render_table

    print(render_table(edges, "FIGURES 1-2 -- reduction edges"))
    print()
    print(render_table(anatomy, "FIGURE 3 -- RingDist labelling progress"))


def _cmd_lower_bounds(args: argparse.Namespace) -> None:
    from repro.experiments.lower_bounds import (
        distinguisher_sizes,
        lemma5_witness,
        lemma6_floors,
    )

    lemma5 = [lemma5_witness(8)]
    lemma6 = lemma6_floors(args.seed, backend=args.backend)
    cor29 = distinguisher_sizes()
    if args.json:
        print(json.dumps({
            "lemma5": [r.to_dict() for r in lemma5],
            "lemma6": [r.to_dict() for r in lemma6],
            "cor29": [r.to_dict() for r in cor29],
        }, indent=2))
        return
    from repro.experiments import render_table

    print(render_table(lemma5, "LEMMA 5 -- parity witness"))
    print()
    print(render_table(lemma6, "LEMMA 6 -- LD floors"))
    print()
    print(render_table(cor29, "COR 29 -- distinguisher sizes"))


def _cmd_run(args: argparse.Namespace) -> None:
    from repro.api import RingSession, list_protocols

    if args.protocol is None:
        if args.json:
            print(json.dumps({
                "protocols": [
                    {"name": spec.name, "description": spec.description}
                    for spec in list_protocols()
                ],
            }, indent=2))
            return
        print("registered protocols:")
        for spec in list_protocols():
            print(f"  {spec.name:20s} {spec.description}")
        return

    from repro.exceptions import (
        ConfigurationError,
        InfeasibleProblemError,
        ProtocolError,
        ReproError,
    )

    if args.shard is not None and args.backend != "array":
        args.parser.error("--shard requires --backend array")
    faults = _parse_faults(args)
    if faults is not None:
        try:
            faults.validate_for(args.n)
        except ConfigurationError as exc:
            args.parser.error(f"--faults: {exc}")
    from repro.store.service import resolve_cache

    session = RingSession(
        n=args.n,
        model=args.model,
        backend=args.backend,
        seed=args.seed,
        common_sense=args.common_sense,
        driver=args.driver,
        unchecked=args.unchecked,
        shards=args.shard,
        cache=resolve_cache(args.cache),
        cache_dir=args.cache_dir,
        faults=faults,
    )
    try:
        result = session.run(args.protocol)
    except ReproError as exc:
        if session.faults is not None:
            # Graceful degradation: a run the protocol's own checks
            # abort under an active fault plan is the "detect" outcome,
            # reported rather than treated as a usage error.
            if args.json:
                print(json.dumps({
                    "protocol": args.protocol,
                    "n": args.n,
                    "faults": {
                        "plan": json.loads(session.faults.canonical()),
                        "outcome": "detected",
                        "error": type(exc).__name__,
                        "message": str(exc),
                    },
                }, indent=2))
            else:
                print(f"fault detected by {args.protocol}: "
                      f"{type(exc).__name__}: {exc}")
            return 1
        if isinstance(exc, (InfeasibleProblemError, ProtocolError)):
            # Unknown protocol names and paper-proven-infeasible
            # settings are user errors, not tracebacks.
            args.parser.error(str(exc))
        raise
    phases = [
        {
            "name": name,
            "rounds": rounds,
            "driver": session.phase_drivers.get(name, session.driver),
        }
        for name, rounds in session.phase_rounds.items()
    ]
    if args.json:
        payload = {
            "protocol": args.protocol,
            "n": args.n,
            "model": args.model,
            "backend": session.backend_name,
            "seed": args.seed,
            "common_sense": args.common_sense,
            "driver": session.driver,
            "unchecked": args.unchecked,
            "phases": phases,
            "result": result.to_dict(),
        }
        if session.faults is not None:
            payload["faults"] = {
                "plan": json.loads(session.faults.canonical()),
                "outcome": "completed",
            }
        print(json.dumps(payload, indent=2))
        return
    print(f"n={args.n}, model={args.model}, N={session.state.id_bound}, "
          f"backend={session.backend_name}, driver={session.driver}")
    if session.faults is not None:
        print(f"fault plan active: {session.faults.canonical()}")
    print(f"{args.protocol} solved in {result.rounds} rounds:")
    for phase in phases:
        print(f"  {phase['name']:22s} {phase['rounds']:6d}  "
              f"[{phase['driver']}]")


def _cmd_sweep(args: argparse.Namespace) -> None:
    from repro.api import Fleet, get_protocol, sweep
    from repro.exceptions import ProtocolError

    try:
        get_protocol(args.protocol)
    except ProtocolError as exc:
        args.parser.error(f"--protocol: {exc}")

    from repro.ring.backends import BACKEND_NAMES
    from repro.types import Model

    # Validate the comma-separated lists up front: a typo should be an
    # argparse-style error, not a traceback out of a pool worker.
    models = _names(args.models)
    backends = _names(args.backends)
    valid_models = {m.value for m in Model}
    valid_backends = set(BACKEND_NAMES)
    bad = [m for m in models if m not in valid_models]
    if bad:
        args.parser.error(
            f"--models: unknown {', '.join(bad)} "
            f"(choose from {', '.join(sorted(valid_models))})"
        )
    bad = [b for b in backends if b not in valid_backends]
    if bad:
        args.parser.error(
            f"--backends: unknown {', '.join(bad)} "
            f"(choose from {', '.join(sorted(valid_backends))})"
        )

    faults = _parse_faults(args)
    sizes = _sizes(args.sizes)
    if faults is not None:
        from repro.exceptions import ConfigurationError

        for n in sizes:
            try:
                faults.validate_for(n)
            except ConfigurationError as exc:
                args.parser.error(f"--faults: {exc}")

    specs = sweep(
        protocol=args.protocol,
        sizes=sizes,
        seeds=_sizes(args.seeds),
        models=models,
        backends=backends,
        common_sense=args.common_sense,
        driver=args.driver,
        unchecked=args.unchecked,
        faults=faults.canonical() if faults is not None else None,
    )
    fleet = Fleet(
        specs, workers=args.workers, executor=args.executor,
        cache=args.cache, cache_dir=args.cache_dir,
    )
    report = fleet.run()
    payload = report.to_json()
    print(payload)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)


def _cmd_demo(args: argparse.Namespace) -> None:
    from repro import Model, RingSession

    model = Model(args.model)
    session = RingSession(
        n=args.n, model=model, seed=args.seed, backend=args.backend,
        common_sense=False,
    )
    print(f"n={args.n}, model={model.value}, N={session.state.id_bound}, "
          f"backend={args.backend}")
    result = session.run("location-discovery")
    print(f"location discovery solved in {result.rounds} rounds:")
    for phase, rounds in result.rounds_by_phase.items():
        print(f"  {phase:22s} {rounds:6d}")
    print("agent 0's reconstructed gaps:", result.gaps_by_agent[0])


def _cmd_bench(args: argparse.Namespace) -> None:
    from repro.experiments.harness import backend_shootout

    report = backend_shootout(
        n=args.n, rounds=args.rounds, seed=args.seed, repeats=args.repeats
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_bench_policies(args: argparse.Namespace) -> None:
    from repro.experiments.harness import policy_shootout

    report = policy_shootout(
        sizes=tuple(_sizes(args.sizes)), seed=args.seed,
        repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_bench_array(args: argparse.Namespace) -> None:
    from repro.experiments.harness import array_shootout

    report = array_shootout(
        sizes=tuple(_sizes(args.sizes)), seed=args.seed,
        repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_bench_speculative(args: argparse.Namespace) -> None:
    from repro.experiments.harness import speculative_shootout

    report = speculative_shootout(
        sizes=tuple(_sizes(args.sizes)), distances_n=args.distances_n,
        seed=args.seed, repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_bench_equations(args: argparse.Namespace) -> None:
    from repro.experiments.harness import equations_shootout

    report = equations_shootout(
        distances_sizes=tuple(_sizes(args.distances_sizes)),
        sweep_sizes=tuple(_sizes(args.sweep_sizes)),
        seed=args.seed, repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_bench_fleet(args: argparse.Namespace) -> None:
    from repro.experiments.harness import fleet_shootout

    report = fleet_shootout(
        sessions=args.sessions, n=args.n, workers=args.workers,
        seed=args.seed, repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_bench_shard(args: argparse.Namespace) -> None:
    from repro.experiments.harness import shard_shootout

    report = shard_shootout(
        sizes=tuple(_sizes(args.sizes)), shards=args.shards,
        rounds=args.rounds, seed=args.seed, repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_bench_cache(args: argparse.Namespace) -> None:
    from repro.experiments.harness import cache_shootout

    report = cache_shootout(
        sessions=args.sessions, n=args.n, dupes=args.dupes,
        seed=args.seed, repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.store.service import get_store, verify_entry

    store = get_store(args.cache_dir)
    if args.action == "stats":
        print(json.dumps(store.stats(), indent=2))
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(json.dumps({
            "cleared": removed, "cache_dir": str(store.cache_dir),
        }, indent=2))
        return 0
    # verify: recompute stored entries and assert bit-equality.
    digests = list(store.iter_digests())
    if args.sample is not None:
        if args.sample < 1:
            args.parser.error("--sample must be >= 1")
        digests = digests[:args.sample]
    rows = [verify_entry(store, digest) for digest in digests]
    ok = all(row["ok"] for row in rows)
    print(json.dumps({
        "cache_dir": str(store.cache_dir),
        "verified": len(rows),
        "ok": ok,
        "rows": rows,
    }, indent=2))
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run as lint_run

    return lint_run(args)


def _add_backend(parser: argparse.ArgumentParser) -> None:
    from repro.ring.backends import BACKEND_NAMES, DEFAULT_BACKEND

    parser.add_argument(
        "--backend", default=DEFAULT_BACKEND, choices=list(BACKEND_NAMES),
        help="kinematics backend for the simulation",
    )


def _add_driver(parser: argparse.ArgumentParser) -> None:
    from repro.api import DEFAULT_DRIVER, DRIVER_NAMES

    parser.add_argument(
        "--driver", default=DEFAULT_DRIVER, choices=list(DRIVER_NAMES),
        help="phase implementation: native whole-population policies "
        "or the legacy per-agent callback drivers (bit-exact)",
    )
    parser.add_argument(
        "--unchecked", action="store_true",
        help="skip the provably-restoring rounds of probe/restore "
        "pairs (native driver; same results and final positions, "
        "fewer rounds and shorter logs)",
    )


def _model_choices() -> List[str]:
    from repro.types import Model

    return [m.value for m in Model]


def _add_json(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a text table",
    )


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="fault plan as inline JSON or @file.json: crash-stop, "
        "byzantine and delayed agent slots plus a round budget "
        "(deterministic and seeded; see docs/ARCHITECTURE.md)",
    )


def _parse_faults(args: argparse.Namespace):
    """The --faults plan (or None), with argparse-style error handling."""
    spec = args.faults
    if spec is None:
        return None
    if spec.startswith("@"):
        path = spec[1:]
        try:
            with open(path) as fh:
                spec = fh.read()
        except OSError as exc:
            args.parser.error(f"--faults: cannot read {path}: {exc}")
    from repro.exceptions import ConfigurationError
    from repro.faults.plan import FaultPlan

    try:
        return FaultPlan.coerce(spec)
    except ConfigurationError as exc:
        args.parser.error(f"--faults: {exc}")


def _add_cache(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="compute-or-fetch against the content-addressed run store "
        "(default: on when REPRO_CACHE=1; fetched results are "
        "bit-identical to computed ones)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="run-store directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Deterministic Symmetry Breaking in "
        "Ring Networks' (ICDCS 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a registered protocol on one ring "
        "(no protocol: list the registry)"
    )
    run.add_argument(
        "protocol", nargs="?", default=None,
        help="registry name, e.g. location-discovery or coordination",
    )
    run.add_argument("--n", type=int, default=8)
    run.add_argument(
        "--model", default="perceptive", choices=_model_choices(),
    )
    run.add_argument("--seed", type=int, default=2024)
    run.add_argument("--common-sense", action="store_true")
    run.add_argument(
        "--shard", type=int, default=None, metavar="WORKERS",
        help="run the array backend's fused spans across this many "
        "worker processes over shared memory (requires --backend "
        "array; bit-identical results, only worth it for large rings)",
    )
    _add_backend(run)
    _add_driver(run)
    _add_json(run)
    _add_cache(run)
    _add_faults(run)
    run.set_defaults(fn=_cmd_run)

    sw = sub.add_parser(
        "sweep", help="run a seed/size/model/backend sweep across a "
        "worker pool; emits a JSON RunReport"
    )
    sw.add_argument("--protocol", default="location-discovery")
    sw.add_argument("--sizes", default="8,16")
    sw.add_argument("--seeds", default="0,1,2,3")
    sw.add_argument("--models", default="perceptive")
    sw.add_argument("--backends", default="lattice")
    sw.add_argument("--workers", type=int, default=None)
    sw.add_argument(
        "--executor", default="process",
        choices=["process", "thread", "serial"],
    )
    sw.add_argument("--common-sense", action="store_true")
    _add_driver(sw)
    _add_cache(sw)
    _add_faults(sw)
    sw.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    sw.set_defaults(fn=_cmd_sweep)

    t1 = sub.add_parser("table1", help="regenerate Table I")
    t1.add_argument("--odd", default="9,17,33")
    t1.add_argument("--even", default="8,16,32")
    t1.add_argument("--seed", type=int, default=1)
    _add_backend(t1)
    _add_json(t1)
    t1.set_defaults(fn=_cmd_table1)

    t2 = sub.add_parser("table2", help="regenerate Table II")
    t2.add_argument("--odd", default="9,17")
    t2.add_argument("--even", default="8,16")
    t2.add_argument("--seed", type=int, default=1)
    _add_backend(t2)
    _add_json(t2)
    t2.set_defaults(fn=_cmd_table2)

    figs = sub.add_parser("figures", help="regenerate Figures 1-3 data")
    figs.add_argument("--n", type=int, default=24)
    figs.add_argument("--seed", type=int, default=1)
    _add_backend(figs)
    _add_json(figs)
    figs.set_defaults(fn=_cmd_figures)

    lb = sub.add_parser("lower-bounds", help="Lemmas 5-6 and Cor 29")
    lb.add_argument("--seed", type=int, default=1)
    _add_backend(lb)
    _add_json(lb)
    lb.set_defaults(fn=_cmd_lower_bounds)

    demo = sub.add_parser("demo", help="solve one ring end to end")
    demo.add_argument("--n", type=int, default=8)
    demo.add_argument(
        "--model", default="perceptive", choices=_model_choices(),
    )
    demo.add_argument("--seed", type=int, default=2024)
    _add_backend(demo)
    demo.set_defaults(fn=_cmd_demo)

    bench = sub.add_parser(
        "bench", help="time the kinematics backends against each other"
    )
    bench.add_argument("--n", type=int, default=64)
    bench.add_argument("--rounds", type=int, default=256)
    bench.add_argument("--seed", type=int, default=11)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    bench.set_defaults(fn=_cmd_bench)

    bp = sub.add_parser(
        "bench-policies",
        help="time the native phase drivers against the per-agent "
        "callback drivers",
    )
    bp.add_argument("--sizes", default="64,256,1024")
    bp.add_argument("--seed", type=int, default=11)
    bp.add_argument("--repeats", type=int, default=3)
    bp.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    bp.set_defaults(fn=_cmd_bench_policies)

    ba = sub.add_parser(
        "bench-array",
        help="time the array backend's fused stretches against the "
        "lattice backend on large rings",
    )
    ba.add_argument("--sizes", default="1024,4096,16384")
    ba.add_argument("--seed", type=int, default=11)
    ba.add_argument("--repeats", type=int, default=2)
    ba.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    ba.set_defaults(fn=_cmd_bench_array)

    bs = sub.add_parser(
        "bench-speculative",
        help="time speculative fused stretches (data-dependent sweeps "
        "+ Algorithm 6) on the array vs the lattice backend",
    )
    bs.add_argument("--sizes", default="256,1024")
    bs.add_argument("--distances-n", type=int, default=48)
    bs.add_argument("--seed", type=int, default=11)
    bs.add_argument("--repeats", type=int, default=2)
    bs.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    bs.set_defaults(fn=_cmd_bench_speculative)

    be = sub.add_parser(
        "bench-equations",
        help="time the fraction-free equation engine and columnar gap "
        "harvests against the exact-Fraction spec paths",
    )
    be.add_argument("--distances-sizes", default="24,48,96")
    be.add_argument("--sweep-sizes", default="256,1024")
    be.add_argument("--seed", type=int, default=11)
    be.add_argument("--repeats", type=int, default=2)
    be.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    be.set_defaults(fn=_cmd_bench_equations)

    bf = sub.add_parser(
        "bench-fleet",
        help="time a fleet sweep serially vs. across a process pool",
    )
    bf.add_argument("--sessions", type=int, default=16)
    bf.add_argument("--n", type=int, default=24)
    bf.add_argument("--workers", type=int, default=4)
    bf.add_argument("--seed", type=int, default=0)
    bf.add_argument("--repeats", type=int, default=3)
    bf.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    bf.set_defaults(fn=_cmd_bench_fleet)

    bsh = sub.add_parser(
        "bench-shard",
        help="time sharded whole-ring fused spans against the serial "
        "array backend on large rings",
    )
    bsh.add_argument("--sizes", default="65536,262144,1048576")
    bsh.add_argument("--shards", type=int, default=4)
    bsh.add_argument("--rounds", type=int, default=48)
    bsh.add_argument("--seed", type=int, default=11)
    bsh.add_argument("--repeats", type=int, default=3)
    bsh.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    bsh.set_defaults(fn=_cmd_bench_shard)

    bc = sub.add_parser(
        "bench-cache",
        help="time run-store warm fetches and sweep dedup against "
        "recomputation (bit-exactness asserted before timing)",
    )
    bc.add_argument("--sessions", type=int, default=8)
    bc.add_argument("--n", type=int, default=16)
    bc.add_argument("--dupes", type=int, default=4)
    bc.add_argument("--seed", type=int, default=0)
    bc.add_argument("--repeats", type=int, default=3)
    bc.add_argument(
        "--out", default=None, help="also write the JSON report to this path"
    )
    bc.set_defaults(fn=_cmd_bench_cache)

    cache = sub.add_parser(
        "cache",
        help="inspect the content-addressed run store (stats), "
        "recompute-and-compare entries (verify), or empty it (clear)",
    )
    cache.add_argument(
        "action", choices=["stats", "verify", "clear"],
        help="stats: entry count, bytes and hit/miss events; verify: "
        "rerun stored specs and assert bit-equality (exit 1 on any "
        "mismatch); clear: remove every entry",
    )
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="run-store directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    cache.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="verify only the first N entries (sorted by digest) "
        "instead of all of them",
    )
    cache.set_defaults(fn=_cmd_cache)

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST invariant linter (exit 1 on findings)",
    )
    from repro.lint.cli import configure_parser as _configure_lint

    _configure_lint(lint)
    lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.parser = parser  # for subcommand-level validation errors
    code = args.fn(args)
    return int(code) if code else 0


if __name__ == "__main__":
    sys.exit(main())
