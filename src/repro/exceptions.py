"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch one type to handle anything we raise deliberately.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An initial ring configuration is malformed.

    Raised for duplicate positions, out-of-range IDs, chirality vectors of
    the wrong length, or agent counts that violate the paper's standing
    assumption ``N >= n > 4``.
    """


class ModelViolationError(ReproError):
    """A protocol attempted an action its model variant forbids.

    The canonical case is choosing ``idle`` in the *basic* or *perceptive*
    model, where an agent must move every round.
    """


class ProtocolError(ReproError):
    """A protocol reached a state its correctness argument excludes.

    Seeing this exception means either a bug or a violated precondition
    (e.g. running an even-n-only protocol on an odd ring).
    """


class FaultBudgetError(ProtocolError):
    """A fault-injected run exceeded its round budget.

    Raised by the scheduler when an active fault plan's ``max_rounds``
    budget is exhausted: the injected faults broke the protocol's
    termination argument (e.g. a Byzantine agent keeps a consensus
    round from ever becoming clean).  Subclasses
    :class:`ProtocolError` because it is the fault layer's "detect"
    outcome for liveness, mirroring what the consensus/full-rank
    checks do for safety.
    """


class InfeasibleProblemError(ReproError):
    """The requested task is provably unsolvable in the requested model.

    Mirrors Lemma 5 of the paper: location discovery in the basic model
    with even ``n`` is impossible, because every round's rotation index is
    even and agents can therefore only ever visit positions at even ring
    distance from their own.
    """


class SimulationError(ReproError):
    """The event-driven simulator detected an internal inconsistency."""


class SingularSystemError(ReproError):
    """A linear system expected to be uniquely solvable was singular."""
